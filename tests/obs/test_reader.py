"""Corrupt and truncated traces must fail loudly, naming the position."""

import json

import pytest

from repro.obs import (
    MigrationEvent,
    PhaseEvent,
    TraceError,
    TraceHeader,
    open_sink,
    read_trace,
)
from repro.obs.reader import read_header

HEADER = TraceHeader(policy="broadcast", app="lu", seed=1, num_cores=16)
EVENTS = [
    PhaseEvent(cycle=10, phase="measure"),
    MigrationEvent(cycle=50, vm_id=0, vcpu_index=1, old_core=2, new_core=3),
    MigrationEvent(cycle=50, vm_id=1, vcpu_index=0, old_core=3, new_core=2),
]


def _write(tmp_path, fmt, events=EVENTS, close=True):
    path = str(tmp_path / f"t-{fmt}.trace")
    sink = open_sink(path, trace_format=fmt)
    sink.write_header(HEADER)
    for event in events:
        sink.emit(event)
    if close:
        sink.close(final_cycle=60)
    else:
        sink._release()  # abandon without the end marker, as a crash would
    return path


@pytest.mark.parametrize("fmt", ["jsonl", "binary"])
def test_missing_end_marker_raises(tmp_path, fmt):
    path = _write(tmp_path, fmt, close=False)
    with pytest.raises(TraceError, match="no end marker"):
        list(read_trace(path))


@pytest.mark.parametrize("fmt", ["jsonl", "binary"])
def test_allow_partial_reads_what_is_there(tmp_path, fmt):
    path = _write(tmp_path, fmt, close=False)
    assert list(read_trace(path, allow_partial=True)) == EVENTS


def test_truncated_binary_record_names_the_byte(tmp_path):
    path = _write(tmp_path, "binary")
    data = open(path, "rb").read()
    open(path, "wb").write(data[:-5])  # cut into the final record
    with pytest.raises(TraceError, match=r"truncated at byte \d+"):
        list(read_trace(path))
    # allow_partial forgives a *missing* end marker, never a torn record.
    with pytest.raises(TraceError, match=r"truncated at byte \d+"):
        list(read_trace(path, allow_partial=True))


def test_corrupt_jsonl_line_names_the_line(tmp_path):
    path = _write(tmp_path, "jsonl")
    lines = open(path).read().splitlines()
    lines[2] = lines[2][: len(lines[2]) // 2]  # tear a record mid-JSON
    open(path, "w").write("\n".join(lines) + "\n")
    with pytest.raises(TraceError, match="line 3"):
        list(read_trace(path))


def test_unknown_binary_tag_names_the_byte(tmp_path):
    path = _write(tmp_path, "binary")
    data = bytearray(open(path, "rb").read())
    # First record tag sits right after magic + version + len + header.
    header_len = int.from_bytes(data[9:13], "little")
    first_tag = 13 + header_len
    data[first_tag] = 0xEE
    open(path, "wb").write(bytes(data))
    with pytest.raises(TraceError, match=f"byte {first_tag}: unknown record tag"):
        list(read_trace(path))


@pytest.mark.parametrize("fmt", ["jsonl", "binary"])
def test_end_marker_count_mismatch_raises(tmp_path, fmt):
    path = str(tmp_path / f"bad-count.{fmt}")
    sink = open_sink(path, trace_format=fmt)
    sink.write_header(HEADER)
    sink.emit(EVENTS[0])
    sink.events_written = 7  # forge a bad count into the end marker
    sink.close(final_cycle=60)
    with pytest.raises(TraceError, match="claims 7 events but 1"):
        list(read_trace(path))


def test_record_after_end_marker_raises(tmp_path):
    path = _write(tmp_path, "jsonl")
    extra = json.dumps(
        {"kind": "phase", "cycle": 99, "phase": "measure"}, sort_keys=True
    )
    open(path, "a").write(extra + "\n")
    with pytest.raises(TraceError, match="record after the end marker"):
        list(read_trace(path))


def test_empty_file_raises(tmp_path):
    path = str(tmp_path / "empty.jsonl")
    open(path, "w").close()
    with pytest.raises(TraceError, match="empty file"):
        read_header(path)


def test_binary_header_truncation_raises(tmp_path):
    path = _write(tmp_path, "binary")
    data = open(path, "rb").read()
    open(path, "wb").write(data[:10])  # mid-preamble
    with pytest.raises(TraceError, match="truncated at byte 10"):
        read_header(path)


def test_not_a_trace_header_raises(tmp_path):
    path = str(tmp_path / "nope.jsonl")
    open(path, "w").write('{"kind": "something-else"}\n')
    with pytest.raises(TraceError, match="not a repro trace header"):
        read_header(path)
