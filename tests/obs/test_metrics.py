"""The windowed metrics series must rebuild the aggregate counters."""

import json

import pytest

from repro.core.filter import SnoopPolicy
from repro.obs import MetricsRecorder, MetricsSeries, MetricsWindow
from repro.sim import SimConfig, SimTask
from repro.sim.runner import run_matrix_detailed, run_simulation_task


def _metrics_config(**overrides):
    defaults = dict(
        snoop_policy=SnoopPolicy.VSNOOP_COUNTER,
        migration_period_ms=0.05,
        accesses_per_vcpu=6_000,
        warmup_accesses_per_vcpu=500,
        metrics_sample_every=20_000,
    )
    defaults.update(overrides)
    return SimConfig.migration_study(**defaults)


def test_window_sums_equal_aggregate_counters():
    stats = run_simulation_task(SimTask(_metrics_config(), "ocean"))
    series = stats.metrics
    assert series is not None
    assert series.sample_every == 20_000
    assert len(series) > 1, "run must span several sample windows"

    totals = series.totals()
    assert totals["transactions"] == stats.total_transactions
    assert totals["snoops"] == stats.total_snoops
    assert totals["retries"] == stats.coherence.retries
    assert totals["network_bytes"] == stats.network_bytes
    # The series counts relocation events; SimStats counts swaps (2 each).
    assert totals["migrations"] == 2 * stats.migrations
    assert totals["removal_cycles"] == sum(stats.removal_periods_cycles)

    # Windows tile the measured phase contiguously and aligned.
    starts = [w.start for w in series.windows]
    assert starts == sorted(starts)
    for prev, nxt in zip(starts, starts[1:]):
        assert nxt == prev + series.sample_every

    # State levels: per-VM map sizes are always within [1, num_cores].
    for window in series.windows:
        assert set(window.map_sizes) == {1, 2, 3, 4}
        assert all(1 <= size <= 16 for size in window.map_sizes.values())
        assert window.residence_sum >= 0


def test_series_round_trips_through_json():
    stats = run_simulation_task(SimTask(_metrics_config(), "ocean"))
    series = stats.metrics
    encoded = json.dumps(series.to_dict(), sort_keys=True)
    restored = MetricsSeries.from_dict(json.loads(encoded))
    assert restored == series
    # And the full stats object carries the series through its own codec.
    from repro.sim.stats import SimStats

    full = json.dumps(stats.to_dict(), sort_keys=True)
    assert SimStats.from_dict(json.loads(full)) == stats


def test_manifest_cells_carry_the_time_series(tmp_path):
    tasks = [SimTask(_metrics_config(), "ocean"), SimTask(_metrics_config(), "fft")]
    run_matrix_detailed(
        tasks, jobs=1, checkpoint_dir=str(tmp_path), label="obs-test"
    )
    manifest = json.loads((tmp_path / "manifest-obs-test.json").read_text())
    assert len(manifest["tasks"]) == 2
    for entry in manifest["tasks"]:
        series = MetricsSeries.from_dict(entry["metrics"])
        assert series.sample_every == 20_000
        assert series.totals()["transactions"] > 0


def test_cells_without_metrics_stay_unchanged(tmp_path):
    config = SimConfig(accesses_per_vcpu=300, warmup_accesses_per_vcpu=150)
    run_matrix_detailed(
        [SimTask(config, "fft")], jobs=1, checkpoint_dir=str(tmp_path), label="plain"
    )
    manifest = json.loads((tmp_path / "manifest-plain.json").read_text())
    assert "metrics" not in manifest["tasks"][0]


def test_recorder_rejects_nonpositive_interval():
    with pytest.raises(ValueError, match="sample_every"):
        MetricsRecorder(system=None, sample_every=0)
    with pytest.raises(ValueError, match="metrics_sample_every"):
        SimConfig(metrics_sample_every=-5)


def test_series_codec_rejects_unknown_keys():
    with pytest.raises(ValueError, match="bogus"):
        MetricsSeries.from_dict({"sample_every": 10, "bogus": 1})
    with pytest.raises(ValueError, match="stray"):
        MetricsWindow.from_dict({"start": 0, "width": 10, "stray": 2})


def test_window_map_size_keys_survive_json_as_ints():
    window = MetricsWindow(start=0, width=10, map_sizes={3: 4, 12: 2})
    restored = MetricsWindow.from_dict(
        json.loads(json.dumps(window.to_dict(), sort_keys=True))
    )
    assert restored == window
    assert set(restored.map_sizes) == {3, 12}
