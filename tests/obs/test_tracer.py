"""The tracer must agree with the aggregate statistics it shadows.

One migration-heavy counter run is traced in both formats and the event
stream is checked *exactly* against ``SimStats``: per-event snoop/retry
deltas sum to the aggregate counters, transaction events are one per
coherence transaction, relocation events are two per swap, and the
MAP_SHRINK periods reproduce ``removal_periods_cycles`` verbatim.
"""

import pytest

from repro.core.filter import SnoopPolicy
from repro.obs import (
    MapEvent,
    MigrationEvent,
    PhaseEvent,
    TransactionEvent,
    read_trace,
)
from repro.obs.reader import read_header
from repro.sim import SimConfig, SimTask
from repro.sim.runner import run_simulation_task


def _traced_run(tmp_path, fmt):
    path = str(tmp_path / f"run.{fmt}")
    config = SimConfig.migration_study(
        snoop_policy=SnoopPolicy.VSNOOP_COUNTER,
        migration_period_ms=0.05,
        accesses_per_vcpu=6_000,
        warmup_accesses_per_vcpu=500,
        trace=path,
        trace_format=fmt,
    )
    stats = run_simulation_task(SimTask(config, "ocean"))
    return stats, path


@pytest.mark.parametrize("fmt", ["jsonl", "binary"])
def test_trace_reconciles_with_stats(tmp_path, fmt):
    stats, path = _traced_run(tmp_path, fmt)
    events = list(read_trace(path))

    transactions = [e for e in events if isinstance(e, TransactionEvent)]
    migrations = [e for e in events if isinstance(e, MigrationEvent)]
    shrinks = [e for e in events if isinstance(e, MapEvent) and not e.grew]
    grows = [e for e in events if isinstance(e, MapEvent) and e.grew]
    phases = [e for e in events if isinstance(e, PhaseEvent)]

    # One TransactionEvent per coherence transaction, carrying exact
    # counter deltas.
    assert len(transactions) == stats.total_transactions
    assert sum(e.snoops for e in transactions) == stats.total_snoops
    assert sum(e.retries for e in transactions) == stats.coherence.retries
    assert all(e.dest_size >= 1 for e in transactions)

    # A swap relocates two vCPUs, so the trace carries 2x the swap count.
    assert stats.migrations > 0
    assert len(migrations) == 2 * stats.migrations

    # Counter-driven map shrinks reproduce the removal-period list.
    assert stats.removal_periods_cycles
    assert sorted(e.period for e in shrinks) == sorted(
        stats.removal_periods_cycles
    )
    # A shrunk map must have grown back first for the next shrink.
    assert grows, "migration run must re-grow maps"

    # Exactly one measurement-start phase marker, before every other event.
    assert [p.phase for p in phases] == ["measure"]
    assert events[0] == phases[0]

    header = read_header(path)
    assert header.policy == SnoopPolicy.VSNOOP_COUNTER.value
    assert header.app == "ocean"
    assert header.num_cores == 16


def test_trace_covers_only_the_measured_phase(tmp_path):
    stats, path = _traced_run(tmp_path, "binary")
    events = list(read_trace(path))
    measure_start = events[0].cycle
    assert all(e.cycle >= measure_start for e in events)
