"""Observers must not perturb the simulation they observe.

The same config is run four ways — serial, through a two-worker
``parallel_map`` pool, with the tracer attached, and with the metrics
recorder attached — and the resulting ``SimStats`` are compared **bit
for bit** (canonical JSON encoding). This is the ``--sanitize``
guarantee extended to the whole observability layer: with tracing and
metrics off the hot path is untouched, and with them on they only read.
"""

import dataclasses
import json

from repro.core.filter import SnoopPolicy
from repro.sim import SimConfig, SimTask
from repro.sim.runner import parallel_map, run_simulation_task

BASE = SimConfig.migration_study(
    snoop_policy=SnoopPolicy.VSNOOP_COUNTER,
    migration_period_ms=0.05,
    accesses_per_vcpu=6_000,
    warmup_accesses_per_vcpu=500,
)


def canonical(stats, drop_metrics=False) -> str:
    data = stats.to_dict()
    if drop_metrics:
        data.pop("metrics", None)
    return json.dumps(data, sort_keys=True)


def test_serial_parallel_traced_and_metered_runs_are_bit_identical(tmp_path):
    tasks = [SimTask(BASE, "ocean"), SimTask(BASE, "fft")]

    serial = [run_simulation_task(t) for t in tasks]
    pooled = parallel_map(run_simulation_task, tasks, jobs=2)
    traced = [
        run_simulation_task(
            SimTask(
                dataclasses.replace(t.config, trace=str(tmp_path / f"{t.app}.evt")),
                t.app,
            )
        )
        for t in tasks
    ]
    metered = [
        run_simulation_task(
            SimTask(dataclasses.replace(t.config, metrics_sample_every=20_000), t.app)
        )
        for t in tasks
    ]

    for base, pool, trace, meter in zip(serial, pooled, traced, metered):
        reference = canonical(base)
        assert canonical(pool) == reference
        assert canonical(trace) == reference
        # The metered run adds only the series; everything else is identical.
        assert meter.metrics is not None
        assert canonical(meter, drop_metrics=True) == reference


def test_both_observers_together_change_nothing(tmp_path):
    task = SimTask(BASE, "ocean")
    reference = canonical(run_simulation_task(task))
    both = run_simulation_task(
        SimTask(
            dataclasses.replace(
                BASE,
                trace=str(tmp_path / "both.jsonl"),
                trace_format="jsonl",
                metrics_sample_every=20_000,
            ),
            "ocean",
        )
    )
    assert canonical(both, drop_metrics=True) == reference
