"""Every event type must survive both trace formats byte-losslessly."""

import dataclasses

import pytest

from repro.obs import (
    BinaryTraceSink,
    JsonlTraceSink,
    MapEvent,
    MigrationEvent,
    PhaseEvent,
    TraceHeader,
    TransactionEvent,
    ViolationEvent,
    open_sink,
    read_trace,
)
from repro.obs.events import (
    EventKind,
    event_from_json_obj,
    event_to_json_obj,
    kind_of,
    pack_event,
    unpack_event,
)
from repro.obs.reader import read_header

HEADER = TraceHeader(policy="counter", app="fft", seed=7, num_cores=16)

# One instance of every event type, with deliberately awkward values
# (negative cores, zero-size maps, booleans both ways).
SAMPLE_EVENTS = [
    TransactionEvent(
        cycle=12_345,
        core=15,
        vm_id=3,
        block=0x7FFF_0040,
        page_type="vm_private",
        initiator="guest",
        is_write=True,
        dest_size=4,
        snoops=3,
        retries=0,
        latency=42,
    ),
    TransactionEvent(
        cycle=12_346,
        core=0,
        vm_id=0,
        block=0,
        page_type="ro_shared",
        initiator="hypervisor",
        is_write=False,
        dest_size=16,
        snoops=15,
        retries=2,
        latency=177,
    ),
    MigrationEvent(cycle=20_000, vm_id=1, vcpu_index=2, old_core=5, new_core=9),
    MigrationEvent(cycle=0, vm_id=0, vcpu_index=0, old_core=-1, new_core=0),
    MapEvent(cycle=20_001, vm_id=1, core=9, grew=True, size=5),
    MapEvent(cycle=33_000, vm_id=1, core=5, grew=False, size=4, period=13_000),
    ViolationEvent(
        cycle=40_000, check="snoop-safety", vm_id=2, core=7, block=0x1234
    ),
    PhaseEvent(cycle=500, phase="measure"),
]


@pytest.mark.parametrize("fmt", ["jsonl", "binary"])
def test_every_event_round_trips_through_a_file(tmp_path, fmt):
    path = str(tmp_path / f"trace.{fmt}")
    sink = open_sink(path, trace_format=fmt)
    sink.write_header(HEADER)
    for event in SAMPLE_EVENTS:
        sink.emit(event)
    sink.close(final_cycle=99_999)

    assert read_header(path) == HEADER
    # read_trace validates the header and end marker but yields events only.
    assert list(read_trace(path)) == SAMPLE_EVENTS


@pytest.mark.parametrize("event", SAMPLE_EVENTS, ids=lambda e: type(e).__name__)
def test_json_codec_is_lossless(event):
    assert event_from_json_obj(event_to_json_obj(event)) == event


@pytest.mark.parametrize("event", SAMPLE_EVENTS, ids=lambda e: type(e).__name__)
def test_binary_codec_is_lossless(event):
    packed = pack_event(event)
    kind = EventKind(packed[0])
    assert kind == kind_of(event)
    assert unpack_event(kind, packed[1:]) == event


def test_map_event_kind_follows_direction():
    grow = MapEvent(cycle=1, vm_id=0, core=1, grew=True, size=2)
    shrink = dataclasses.replace(grow, grew=False, size=1)
    assert kind_of(grow) is EventKind.MAP_GROW
    assert kind_of(shrink) is EventKind.MAP_SHRINK


def test_json_codec_rejects_malformed_records():
    with pytest.raises(ValueError, match="kind"):
        event_from_json_obj({"cycle": 1})
    with pytest.raises(ValueError, match="unknown trace record kind"):
        event_from_json_obj({"kind": "teleport", "cycle": 1})
    with pytest.raises(ValueError, match="unknown fields"):
        event_from_json_obj({"kind": "phase", "cycle": 1, "phase": "measure", "x": 2})
    with pytest.raises(ValueError, match="missing fields"):
        event_from_json_obj({"kind": "migration", "cycle": 1})


def test_open_sink_auto_picks_format_by_extension(tmp_path):
    jsonl = open_sink(str(tmp_path / "a.jsonl"))
    binary = open_sink(str(tmp_path / "a.evt"))
    try:
        assert isinstance(jsonl, JsonlTraceSink)
        assert isinstance(binary, BinaryTraceSink)
    finally:
        for sink in (jsonl, binary):
            sink.write_header(HEADER)
            sink.close(final_cycle=0)
    with pytest.raises(ValueError, match="trace_format"):
        open_sink(str(tmp_path / "a.x"), trace_format="csv")


def test_sinks_count_events(tmp_path):
    for fmt in ("jsonl", "binary"):
        sink = open_sink(str(tmp_path / f"count.{fmt}"), trace_format=fmt)
        sink.write_header(HEADER)
        for event in SAMPLE_EVENTS:
            sink.emit(event)
        assert sink.events_written == len(SAMPLE_EVENTS)
        sink.close(final_cycle=1)
