"""The cross-run result store: reuse, hardening, and key semantics.

Covers the trust model end to end: a second identical run is served
bit-identically from the store; truncated entries, stale
``STATE_VERSION`` stamps and hash collisions are skipped loudly (with
the reason on stderr) and the cell recomputes; and the key layer keeps
smoke (``REPRO_FAST``) and full cells, and warmup-inert versus
warmup-relevant config fields, properly apart.
"""

import dataclasses
import json
import pickle

import pytest

from repro import store as store_mod
from repro.sim import SimConfig, SimTask, run_matrix_detailed, task_key
from repro.sim.runner import (
    WARMUP_INERT_FIELDS,
    config_to_dict,
    run_simulation_task,
    warmup_fingerprint,
)
from repro.store import STATE_VERSION, ResultStore, get_store, store_root


def tiny_config(**overrides) -> SimConfig:
    defaults = dict(accesses_per_vcpu=300, warmup_accesses_per_vcpu=150)
    defaults.update(overrides)
    return SimConfig(**defaults)


@pytest.fixture()
def fresh_store(tmp_path, monkeypatch):
    """A private, empty store for one test."""
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
    store = get_store()
    assert store is not None and store.counters()["hits"] == 0
    return store


class TestRootResolution:
    def test_unset_defaults_to_home_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        root = store_root()
        assert root is not None and root.parts[-2:] == (".cache", "repro")

    @pytest.mark.parametrize("sentinel", ["0", "off", "none", "disabled", " OFF "])
    def test_sentinels_disable(self, monkeypatch, sentinel):
        monkeypatch.setenv("REPRO_STORE", sentinel)
        assert store_root() is None
        assert get_store() is None

    def test_explicit_path(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        assert store_root() == tmp_path

    def test_get_store_memoises_per_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "a"))
        first = get_store()
        assert get_store() is first  # same root -> same instance/counters
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "b"))
        assert get_store() is not first


class TestResultReuse:
    def test_second_run_is_a_bit_identical_hit(self, fresh_store):
        task = SimTask(tiny_config(), "fft")
        first = run_simulation_task(task)
        assert fresh_store.counters()["misses"] == 1
        second = run_simulation_task(task)
        assert fresh_store.counters()["hits"] == 1
        assert second.to_dict() == first.to_dict()
        assert json.dumps(second.to_dict(), sort_keys=True) == json.dumps(
            first.to_dict(), sort_keys=True
        )

    def test_matrix_serves_from_store_and_marks_cells(self, fresh_store):
        tasks = [SimTask(tiny_config(seed=s), "fft") for s in (7, 8)]
        first = run_matrix_detailed(tasks, jobs=1)
        assert all(not r.from_store for r in first)
        second = run_matrix_detailed(tasks, jobs=1)
        assert all(r.from_store and not r.from_checkpoint for r in second)
        assert [r.stats.to_dict() for r in second] == [
            r.stats.to_dict() for r in first
        ]

    def test_custom_task_fn_is_never_served_store_entries(self, fresh_store):
        task = SimTask(tiny_config(seed=11), "fft")
        run_simulation_task(task)  # populate the store for this key
        calls = []

        def fake(t):
            calls.append(t)
            return run_simulation_task(t)

        results = run_matrix_detailed([task], jobs=1, task_fn=fake)
        assert calls, "custom task_fn must run despite a stored result"
        assert not results[0].from_store

    def test_store_and_checkpoints_promote_both_ways(self, fresh_store, tmp_path):
        task = SimTask(tiny_config(seed=21), "fft")
        key = task_key(task)
        ckpt = tmp_path / "campaign"
        # Store hit seeds the campaign's checkpoint directory...
        run_simulation_task(task)
        run_matrix_detailed([task], jobs=1, checkpoint_dir=str(ckpt))
        assert (ckpt / f"{key}.json").exists()
        # ...and a resumed checkpoint seeds an empty store.
        for entry in fresh_store.results_dir.iterdir():
            entry.unlink()
        resumed = run_matrix_detailed([task], jobs=1, checkpoint_dir=str(ckpt))
        assert resumed[0].from_checkpoint
        assert fresh_store.has_result(key)

    def test_manifest_reports_store_traffic(self, fresh_store, tmp_path):
        task = SimTask(tiny_config(seed=31), "fft")
        run_simulation_task(task)
        ckpt = tmp_path / "campaign"
        run_matrix_detailed([task], jobs=1, checkpoint_dir=str(ckpt), label="m")
        manifest = json.loads((ckpt / "manifest-m.json").read_text())
        assert manifest["totals"]["from_store"] == 1
        assert manifest["store"]["hits"] >= 1
        assert manifest["tasks"][0]["from_store"] is True
        assert manifest["tasks"][0]["us_per_access"] is None


class TestResultHardening:
    def _stored_entry(self, store):
        task = SimTask(tiny_config(seed=41), "fft")
        run_simulation_task(task)
        (path,) = list(store.results_dir.iterdir())
        return task, path

    def _expect_skip_then_recompute(self, store, task, capsys, reason_part):
        skipped_before = store.counters()["skipped"]
        stats = run_simulation_task(task)
        assert stats is not None  # recomputed, not served
        assert store.counters()["skipped"] == skipped_before + 1
        err = capsys.readouterr().err
        assert "[repro.store] skipping result" in err
        assert reason_part in err

    def test_truncated_entry_is_skipped_loudly(self, fresh_store, capsys):
        task, path = self._stored_entry(fresh_store)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        self._expect_skip_then_recompute(fresh_store, task, capsys, "corrupt entry")

    def test_stale_state_version_is_skipped_loudly(self, fresh_store, capsys):
        task, path = self._stored_entry(fresh_store)
        payload = json.loads(path.read_text())
        payload["state_version"] = STATE_VERSION - 1
        path.write_text(json.dumps(payload))
        self._expect_skip_then_recompute(fresh_store, task, capsys, "state_version")

    def test_key_collision_is_detected_by_identity_payload(self, fresh_store, capsys):
        # Simulate the truncated hash colliding: an entry under this
        # cell's key whose embedded config belongs to a different cell.
        task, path = self._stored_entry(fresh_store)
        payload = json.loads(path.read_text())
        payload["config"]["seed"] = payload["config"]["seed"] + 1
        path.write_text(json.dumps(payload))
        self._expect_skip_then_recompute(fresh_store, task, capsys, "key collision")

    def test_renamed_entry_fails_the_embedded_key_check(self, fresh_store, capsys):
        task, path = self._stored_entry(fresh_store)
        other = SimTask(tiny_config(seed=42), "fft")
        path.rename(path.with_name(f"{task_key(other)}.json"))
        skipped_before = fresh_store.counters()["skipped"]
        run_simulation_task(other)
        assert fresh_store.counters()["skipped"] == skipped_before + 1
        assert "embedded key" in capsys.readouterr().err

    def test_save_is_atomic(self, fresh_store):
        task = SimTask(tiny_config(seed=43), "fft")
        run_simulation_task(task)
        leftovers = [
            p for p in fresh_store.results_dir.iterdir() if ".tmp" in p.name
        ]
        assert leftovers == []


class TestSnapshotHardening:
    def _snapshot_entry(self, store):
        task = SimTask(tiny_config(seed=51), "fft")
        run_simulation_task(task)
        (path,) = list(store.snapshots_dir.iterdir())
        return task, path

    def test_truncated_snapshot_is_skipped_and_warmup_reruns(
        self, fresh_store, capsys
    ):
        task, path = self._snapshot_entry(fresh_store)
        path.write_bytes(path.read_bytes()[:64])
        # New cell, same warmup fingerprint: only the measure budget differs.
        sibling = SimTask(
            dataclasses.replace(task.config, accesses_per_vcpu=301), task.app
        )
        stats = run_simulation_task(sibling)
        assert stats is not None
        assert fresh_store.counters()["snapshot_skipped"] == 1
        assert "[repro.store] skipping snapshot" in capsys.readouterr().err

    def test_stale_snapshot_version_is_skipped(self, fresh_store, capsys):
        task, path = self._snapshot_entry(fresh_store)
        payload = pickle.loads(path.read_bytes())
        payload["state_version"] = STATE_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        sibling = SimTask(
            dataclasses.replace(task.config, accesses_per_vcpu=301), task.app
        )
        run_simulation_task(sibling)
        assert fresh_store.counters()["snapshot_skipped"] == 1
        assert "state_version" in capsys.readouterr().err

    def test_malformed_state_falls_back_to_a_real_warmup(self, fresh_store, capsys):
        # A snapshot that passes every envelope check but whose state is
        # garbage must not poison the run: the restore fails, the system
        # is rebuilt, and the straight warm-up produces the same stats.
        task, path = self._snapshot_entry(fresh_store)
        straight = run_simulation_task(
            SimTask(dataclasses.replace(task.config, seed=52), task.app)
        )  # unrelated cell, just to keep the store honest
        assert straight is not None
        payload = pickle.loads(path.read_bytes())
        payload["state"]["caches"] = {"broken": True}
        path.write_bytes(pickle.dumps(payload))
        sibling = SimTask(
            dataclasses.replace(task.config, accesses_per_vcpu=301), task.app
        )
        with_fallback = run_simulation_task(sibling)
        err = capsys.readouterr().err
        assert "[repro.store] skipping snapshot" in err
        fresh_store_off = json.dumps(with_fallback.to_dict(), sort_keys=True)
        # Reference: same cell with the store disabled entirely.
        import os

        previous = os.environ["REPRO_STORE"]
        os.environ["REPRO_STORE"] = "off"
        try:
            reference = run_simulation_task(sibling)
        finally:
            os.environ["REPRO_STORE"] = previous
        assert fresh_store_off == json.dumps(reference.to_dict(), sort_keys=True)

    def test_snapshots_can_be_disabled_by_env(self, fresh_store, monkeypatch):
        monkeypatch.setenv("REPRO_SNAPSHOTS", "off")
        task = SimTask(tiny_config(seed=53), "fft")
        run_simulation_task(task)
        assert not fresh_store.snapshots_dir.exists()
        counters = fresh_store.counters()
        assert counters["snapshot_hits"] == counters["snapshot_misses"] == 0


class TestKeySemantics:
    def test_fast_mode_cells_have_distinct_keys(self):
        # REPRO_FAST shrinks access budgets through scaled(); both the
        # measure and warm-up budgets land in the config, so smoke and
        # full cells can never serve each other.
        full = SimTask(
            tiny_config(accesses_per_vcpu=12_000, warmup_accesses_per_vcpu=6_000),
            "fft",
        )
        fast = SimTask(
            tiny_config(accesses_per_vcpu=3_000, warmup_accesses_per_vcpu=1_500),
            "fft",
        )
        assert task_key(full) != task_key(fast)
        assert warmup_fingerprint(full)[0] != warmup_fingerprint(fast)[0]

    def test_warmup_inert_fields_share_a_fingerprint(self):
        base = SimTask(tiny_config(), "fft")
        key, payload = warmup_fingerprint(base)
        for variant in (
            dataclasses.replace(base.config, accesses_per_vcpu=999),
            dataclasses.replace(base.config, migration_period_ms=2.5),
            dataclasses.replace(base.config, metrics_sample_every=5_000),
            dataclasses.replace(base.config, sanitize=True),
        ):
            variant_key, _ = warmup_fingerprint(SimTask(variant, "fft"))
            assert variant_key == key, variant

    def test_warmup_relevant_fields_split_the_fingerprint(self):
        base = SimTask(tiny_config(), "fft")
        key, _ = warmup_fingerprint(base)
        from repro.core.filter import SnoopPolicy

        for variant_task in (
            SimTask(dataclasses.replace(base.config, seed=99), "fft"),
            SimTask(
                dataclasses.replace(
                    base.config, snoop_policy=SnoopPolicy.VSNOOP_COUNTER
                ),
                "fft",
            ),
            SimTask(
                dataclasses.replace(base.config, warmup_accesses_per_vcpu=151),
                "fft",
            ),
            SimTask(base.config, "lu"),  # the app is part of the identity
        ):
            assert warmup_fingerprint(variant_task)[0] != key, variant_task

    def test_inert_field_list_matches_the_config(self):
        field_names = {f.name for f in dataclasses.fields(SimConfig)}
        assert WARMUP_INERT_FIELDS <= field_names
        payload = warmup_fingerprint(SimTask(tiny_config(), "fft"))[1]
        assert set(payload) == field_names - WARMUP_INERT_FIELDS

    def test_sanitized_runs_produce_but_do_not_consume_snapshots(
        self, fresh_store
    ):
        task = SimTask(tiny_config(seed=61, sanitize=True), "fft")
        run_simulation_task(task)
        assert fresh_store.counters()["snapshot_misses"] == 0  # never asked
        assert any(fresh_store.snapshots_dir.iterdir())  # still produced
        # A non-sanitized sibling consumes what the sanitized run produced.
        sibling = SimTask(dataclasses.replace(task.config, sanitize=False), "fft")
        run_simulation_task(sibling)
        assert fresh_store.counters()["snapshot_hits"] == 1


def test_module_reexports_are_stable():
    # The store module is imported by runner.py at import time; keep the
    # public names the integration relies on pinned.
    for name in (
        "ResultStore",
        "STATE_VERSION",
        "get_store",
        "snapshots_enabled",
        "store_root",
    ):
        assert hasattr(store_mod, name), name
    assert isinstance(get_store(), (ResultStore, type(None)))
