"""Warm-state snapshot restore must be provably invisible.

The reuse layer's correctness claim is absolute: measuring from a
restored snapshot produces **bit-identical** statistics to measuring
after a straight warm-up — for every snoop policy, for the RegionScout
baseline, and for the golden-corpus configurations, through a full
pickle round trip (what the on-disk store actually does). Any diff here
means the snapshot misses mutable state or the restore rebuilds it
wrong, and the store would silently corrupt every campaign it serves.
"""

import json
import pickle

import pytest

from repro.core.filter import ContentPolicy, SnoopPolicy
from repro.sim import SimConfig, SimTask, SimulationEngine, build_system
from repro.sim.runner import run_simulation_task
from repro.workloads import get_profile

from tests.golden.cases import GOLDEN_CASES


def _straight(task: SimTask) -> dict:
    system = build_system(task.config, get_profile(task.app))
    SimulationEngine(system).run()
    return system.stats.to_dict()


def _via_snapshot(task: SimTask) -> dict:
    producer = build_system(task.config, get_profile(task.app))
    clocks = SimulationEngine(producer).warm()
    state = pickle.loads(
        pickle.dumps(producer.snapshot(clocks), protocol=pickle.HIGHEST_PROTOCOL)
    )
    consumer = build_system(task.config, get_profile(task.app))
    engine = SimulationEngine(consumer)
    engine.measure(engine.restore_warm(state))
    return consumer.stats.to_dict()


def _assert_bit_identical(task: SimTask) -> None:
    straight = _straight(task)
    restored = _via_snapshot(task)
    assert json.dumps(restored, sort_keys=True) == json.dumps(
        straight, sort_keys=True
    )


# One case per snoop policy plus the RegionScout baseline, sized small
# enough that the whole matrix stays in tier-1 time.
_POLICY_CASES = {
    "broadcast": SimConfig(
        snoop_policy=SnoopPolicy.BROADCAST,
        accesses_per_vcpu=800,
        warmup_accesses_per_vcpu=400,
    ),
    "vsnoop-base": SimConfig(
        snoop_policy=SnoopPolicy.VSNOOP_BASE,
        accesses_per_vcpu=800,
        warmup_accesses_per_vcpu=400,
    ),
    "counter": SimConfig(
        snoop_policy=SnoopPolicy.VSNOOP_COUNTER,
        accesses_per_vcpu=800,
        warmup_accesses_per_vcpu=400,
        migration_period_ms=0.05,
    ),
    "counter-threshold": SimConfig(
        snoop_policy=SnoopPolicy.VSNOOP_COUNTER_THRESHOLD,
        content_policy=ContentPolicy.INTRA_VM,
        content_sharing_enabled=True,
        accesses_per_vcpu=800,
        warmup_accesses_per_vcpu=400,
    ),
    "regionscout": SimConfig(
        filter_kind="regionscout",
        migration_period_ms=0.5,
        accesses_per_vcpu=800,
        warmup_accesses_per_vcpu=400,
    ),
}


class TestEveryPolicyRestoresBitIdentically:
    @pytest.mark.parametrize("name", sorted(_POLICY_CASES))
    def test_policy(self, name):
        _assert_bit_identical(SimTask(_POLICY_CASES[name], "fft"))

    def test_hypervisor_activity(self):
        _assert_bit_identical(
            SimTask(
                SimConfig(
                    snoop_policy=SnoopPolicy.VSNOOP_BASE,
                    hypervisor_activity_enabled=True,
                    accesses_per_vcpu=800,
                    warmup_accesses_per_vcpu=400,
                ),
                "ocean",
            )
        )


class TestGoldenConfigsRestoreBitIdentically:
    """The frozen golden configs through the snapshot path.

    These are the corpus cases the byte-exact regression suite pins, so
    a pass here proves the reuse layer cannot shift any number the
    golden suite guards.
    """

    @pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
    def test_case(self, name):
        _assert_bit_identical(GOLDEN_CASES[name])


class TestStorePathEndToEnd:
    def test_second_cell_with_shared_fingerprint_restores(
        self, tmp_path, monkeypatch
    ):
        """Through run_simulation_task: cell B consumes cell A's warm-up
        and still matches its own store-off reference bit-for-bit."""
        import dataclasses

        config = SimConfig(accesses_per_vcpu=600, warmup_accesses_per_vcpu=300)
        sibling = dataclasses.replace(config, accesses_per_vcpu=601)

        monkeypatch.setenv("REPRO_STORE", "off")
        reference = run_simulation_task(SimTask(sibling, "fft")).to_dict()

        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        from repro.store import get_store

        store = get_store()
        run_simulation_task(SimTask(config, "fft"))  # produces the snapshot
        assert store.counters()["snapshot_misses"] == 1
        served = run_simulation_task(SimTask(sibling, "fft")).to_dict()
        assert store.counters()["snapshot_hits"] == 1
        assert json.dumps(served, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )

    def test_snapshot_skipped_when_no_warmup(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        from repro.store import get_store

        store = get_store()
        run_simulation_task(
            SimTask(
                SimConfig(accesses_per_vcpu=300, warmup_accesses_per_vcpu=0), "fft"
            )
        )
        counters = store.counters()
        assert counters["snapshot_hits"] == counters["snapshot_misses"] == 0
        assert not store.snapshots_dir.exists()
