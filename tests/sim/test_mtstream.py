"""Tests for the MT19937 word-stream transplant.

The whole batched word path rests on one claim: ``WordStream`` emits the
exact 32-bit word sequence its source ``random.Random`` would, and
``sync_back`` leaves the source positioned as if it had drawn the
consumed words itself. These tests pin that claim directly against
CPython, including across the generator's 624-word twist boundary.
"""

import random

import pytest

from repro.sim.mtstream import HAVE_NUMPY, WordStream

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")


def test_raw_matches_getrandbits():
    rng = random.Random(1234)
    control = random.Random(1234)
    words = WordStream(rng).raw(256)
    assert [int(w) for w in words] == [control.getrandbits(32) for _ in range(256)]


def test_raw_crosses_twist_boundary():
    # 624 words per twist: fetch well past two twists in one call.
    rng = random.Random("twist")
    control = random.Random("twist")
    words = WordStream(rng).raw(1500)
    assert [int(w) for w in words] == [control.getrandbits(32) for _ in range(1500)]


def test_raw_from_mid_state_position():
    # Fork after the source has already consumed an odd number of words
    # (getrandbits(32) consumes exactly one), landing mid-block.
    rng = random.Random(77)
    control = random.Random(77)
    for _ in range(37):
        rng.getrandbits(32)
        control.getrandbits(32)
    words = WordStream(rng).raw(700)
    assert [int(w) for w in words] == [control.getrandbits(32) for _ in range(700)]


def test_random_reconstruction_is_exact():
    # random() is (a >> 5) * 2**26 + (b >> 6) over 2**53 on two words.
    rng = random.Random(42)
    control = random.Random(42)
    words = [int(w) for w in WordStream(rng).raw(200)]
    for i in range(0, 200, 2):
        a, b = words[i] >> 5, words[i + 1] >> 6
        assert control.random() == (a * 67108864.0 + b) * 2.0**-53


@pytest.mark.parametrize("consumed", [0, 1, 623, 624, 625, 1000])
def test_sync_back_repositions_source(consumed):
    rng = random.Random(9)
    control = random.Random(9)
    stream = WordStream(rng)
    stream.raw(1024)  # over-fetch: WordStream does not advance the source
    stream.sync_back(consumed)
    for _ in range(consumed):
        control.getrandbits(32)
    # Every draw style must continue identically after the hand-back.
    assert rng.getrandbits(32) == control.getrandbits(32)
    assert rng.random() == control.random()
    assert [rng.getrandbits(7) for _ in range(50)] == [
        control.getrandbits(7) for _ in range(50)
    ]


def test_fork_does_not_disturb_source():
    rng = random.Random(5)
    control = random.Random(5)
    WordStream(rng).raw(2048)  # fork + fetch, no sync_back
    assert [rng.getrandbits(32) for _ in range(10)] == [
        control.getrandbits(32) for _ in range(10)
    ]
