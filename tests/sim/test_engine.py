"""Integration tests for the simulation engine."""

import pytest

from repro.core.filter import ContentPolicy, SnoopPolicy
from repro.mem.pagetype import PageType
from repro.sim import SimConfig, SimulationEngine, build_system, run_simulation
from repro.workloads import get_profile


def run_small(app="fft", **kw):
    defaults = dict(accesses_per_vcpu=1500, warmup_accesses_per_vcpu=1000)
    defaults.update(kw)
    config = SimConfig(**defaults)
    return run_simulation(build_system(config, get_profile(app)))


class TestBasicRun:
    def test_counts_accesses(self):
        system = run_small()
        assert system.stats.l1_accesses == 16 * 1500

    def test_execution_time_positive(self):
        system = run_small()
        assert system.stats.execution_cycles > 0

    def test_transactions_and_snoops_recorded(self):
        system = run_small()
        assert system.stats.total_transactions > 0
        assert system.stats.total_snoops > 0
        assert system.stats.network_bytes > 0

    def test_deterministic(self):
        a = run_small(seed=11)
        b = run_small(seed=11)
        assert a.stats.total_snoops == b.stats.total_snoops
        assert a.stats.execution_cycles == b.stats.execution_cycles
        assert a.stats.network_bytes == b.stats.network_bytes

    def test_seed_changes_results(self):
        a = run_small(seed=11)
        b = run_small(seed=12)
        assert a.stats.total_snoops != b.stats.total_snoops


class TestRegistryCacheConsistency:
    def test_sharers_match_cache_contents(self):
        system = run_small()
        for core, hierarchy in system.caches.items():
            for line in hierarchy.l2.lines():
                state = system.registry.state_of(line.block)
                assert state is not None and core in state.sharers, (
                    f"core {core} caches block {line.block:#x} unknown to registry"
                )

    def test_registry_sharers_are_cached(self):
        system = run_small()
        for block in list(system.registry._blocks):
            for core in system.registry.sharers_of(block):
                assert system.caches[core].l2.contains(block)

    def test_residence_counters_match_tags(self):
        system = run_small()
        for core, hierarchy in system.caches.items():
            actual = {}
            for line in hierarchy.l2.lines():
                if line.vm_id >= 0:
                    actual[line.vm_id] = actual.get(line.vm_id, 0) + 1
            tracker = system.snoop_filter.trackers[core]
            for vm in (1, 2, 3, 4):
                assert tracker.count(vm) == actual.get(vm, 0)


class TestPolicyOrdering:
    def test_vsnoop_never_snoops_more_than_broadcast(self):
        base = run_small(snoop_policy=SnoopPolicy.BROADCAST, seed=3)
        vsnoop = run_small(snoop_policy=SnoopPolicy.VSNOOP_BASE, seed=3)
        assert vsnoop.stats.total_snoops < base.stats.total_snoops

    def test_pinned_vsnoop_hits_ideal_quarter(self):
        vsnoop = run_small(snoop_policy=SnoopPolicy.VSNOOP_BASE)
        ratio = vsnoop.stats.total_snoops / (16 * vsnoop.stats.total_transactions)
        assert ratio == pytest.approx(0.25, abs=0.03)

    def test_traffic_reduced(self):
        base = run_small(snoop_policy=SnoopPolicy.BROADCAST, seed=3)
        vsnoop = run_small(snoop_policy=SnoopPolicy.VSNOOP_BASE, seed=3)
        assert vsnoop.stats.network_bytes < 0.6 * base.stats.network_bytes


class TestMigration:
    def migration_run(self, policy, period=0.1):
        config = SimConfig.migration_study(
            snoop_policy=policy,
            migration_period_ms=period,
            accesses_per_vcpu=24_000,
            warmup_accesses_per_vcpu=3_000,
        )
        return run_simulation(build_system(config, get_profile("fft")))

    def test_migrations_happen(self):
        system = self.migration_run(SnoopPolicy.VSNOOP_BASE)
        assert system.stats.migrations > 0

    def test_counter_removes_cores(self):
        system = self.migration_run(SnoopPolicy.VSNOOP_COUNTER)
        assert len(system.stats.removal_periods_cycles) > 0

    def test_base_never_removes_cores(self):
        system = self.migration_run(SnoopPolicy.VSNOOP_BASE)
        assert system.stats.removal_periods_cycles == []

    def test_counter_filters_better_than_base(self):
        base = self.migration_run(SnoopPolicy.VSNOOP_BASE)
        counter = self.migration_run(SnoopPolicy.VSNOOP_COUNTER)
        base_norm = base.stats.total_snoops / base.stats.total_transactions
        counter_norm = counter.stats.total_snoops / counter.stats.total_transactions
        assert counter_norm < base_norm

    def test_no_protocol_violations_under_migration(self):
        # counter-threshold removes cores speculatively; the retry ladder
        # must absorb every resulting token-collection failure.
        system = self.migration_run(SnoopPolicy.VSNOOP_COUNTER_THRESHOLD)
        assert system.stats.total_transactions > 0


class TestContentSharing:
    def test_ro_transactions_recorded(self):
        system = run_small("canneal", content_sharing_enabled=True)
        assert system.stats.coherence.transactions_by_page_type[PageType.RO_SHARED] > 0

    def test_memory_direct_snoops_least(self):
        results = {}
        for policy in (ContentPolicy.BROADCAST, ContentPolicy.MEMORY_DIRECT):
            system = run_small(
                "canneal",
                content_sharing_enabled=True,
                snoop_policy=SnoopPolicy.VSNOOP_BASE,
                content_policy=policy,
            )
            results[policy] = (
                system.stats.total_snoops / system.stats.total_transactions
            )
        assert results[ContentPolicy.MEMORY_DIRECT] < results[ContentPolicy.BROADCAST]

    def test_cow_events_when_content_written(self):
        from dataclasses import replace

        profile = replace(get_profile("canneal"), content_write_fraction=0.01)
        config = SimConfig(
            content_sharing_enabled=True,
            accesses_per_vcpu=2000,
            warmup_accesses_per_vcpu=500,
        )
        system = build_system(config, profile)
        SimulationEngine(system).run()
        assert system.stats.cow_events + system.hypervisor.memory.cow_faults > 0


class TestHypervisorActivity:
    def test_initiator_attribution(self):
        system = run_small("oltp", hypervisor_activity_enabled=True)
        from repro.workloads.trace import Initiator

        tx = system.stats.transactions_by_initiator
        assert tx[Initiator.HYPERVISOR] > 0
        assert tx[Initiator.DOM0] > 0
        assert tx[Initiator.GUEST] > tx[Initiator.DOM0]

    def test_hypervisor_pages_are_rw_shared(self):
        system = run_small("oltp", hypervisor_activity_enabled=True)
        assert (
            system.stats.coherence.transactions_by_page_type[PageType.RW_SHARED] > 0
        )
