"""Tests for simulation-level statistics."""

import pytest

from repro.mem.pagetype import PageType
from repro.sim.stats import SimStats
from repro.workloads.trace import Initiator


class TestDerivedMetrics:
    def test_empty_stats_are_zero(self):
        stats = SimStats()
        assert stats.miss_rate() == 0.0
        assert stats.snoops_per_transaction() == 0.0
        assert stats.l1_access_share(PageType.RO_SHARED) == 0.0
        assert stats.l2_miss_share(PageType.RO_SHARED) == 0.0

    def test_miss_decomposition(self):
        stats = SimStats()
        stats.transactions_by_initiator[Initiator.GUEST] = 80
        stats.transactions_by_initiator[Initiator.DOM0] = 15
        stats.transactions_by_initiator[Initiator.HYPERVISOR] = 5
        shares = stats.miss_decomposition_by_initiator()
        assert shares[Initiator.GUEST] == pytest.approx(0.80)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_l1_access_share(self):
        stats = SimStats()
        stats.l1_accesses = 200
        stats.l1_accesses_by_page_type[PageType.RO_SHARED] = 50
        assert stats.l1_access_share(PageType.RO_SHARED) == pytest.approx(0.25)

    def test_l2_miss_share_uses_transactions(self):
        stats = SimStats()
        stats.coherence.record_transaction(PageType.RO_SHARED, is_write=False)
        stats.coherence.record_transaction(PageType.VM_PRIVATE, is_write=False)
        assert stats.l2_miss_share(PageType.RO_SHARED) == pytest.approx(0.5)

    def test_snoops_per_transaction(self):
        stats = SimStats()
        stats.coherence.record_transaction(PageType.VM_PRIVATE, is_write=False)
        stats.coherence.record_snoops(4, PageType.VM_PRIVATE)
        assert stats.snoops_per_transaction() == pytest.approx(4.0)

    def test_miss_rate(self):
        stats = SimStats()
        stats.l1_accesses = 100
        stats.coherence.record_transaction(PageType.VM_PRIVATE, is_write=False)
        assert stats.miss_rate() == pytest.approx(0.01)
