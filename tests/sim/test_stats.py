"""Tests for simulation-level statistics."""

import dataclasses
import json

import pytest

from repro.coherence.stats import CoherenceStats
from repro.mem.pagetype import PageType
from repro.sim.stats import SimStats
from repro.workloads.trace import Initiator


class TestDerivedMetrics:
    def test_empty_stats_are_zero(self):
        stats = SimStats()
        assert stats.miss_rate() == 0.0
        assert stats.snoops_per_transaction() == 0.0
        assert stats.l1_access_share(PageType.RO_SHARED) == 0.0
        assert stats.l2_miss_share(PageType.RO_SHARED) == 0.0

    def test_miss_decomposition(self):
        stats = SimStats()
        stats.transactions_by_initiator[Initiator.GUEST] = 80
        stats.transactions_by_initiator[Initiator.DOM0] = 15
        stats.transactions_by_initiator[Initiator.HYPERVISOR] = 5
        shares = stats.miss_decomposition_by_initiator()
        assert shares[Initiator.GUEST] == pytest.approx(0.80)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_l1_access_share(self):
        stats = SimStats()
        stats.l1_accesses = 200
        stats.l1_accesses_by_page_type[PageType.RO_SHARED] = 50
        assert stats.l1_access_share(PageType.RO_SHARED) == pytest.approx(0.25)

    def test_l2_miss_share_uses_transactions(self):
        stats = SimStats()
        stats.coherence.record_transaction(PageType.RO_SHARED, is_write=False)
        stats.coherence.record_transaction(PageType.VM_PRIVATE, is_write=False)
        assert stats.l2_miss_share(PageType.RO_SHARED) == pytest.approx(0.5)

    def test_snoops_per_transaction(self):
        stats = SimStats()
        stats.coherence.record_transaction(PageType.VM_PRIVATE, is_write=False)
        stats.coherence.record_snoops(4, PageType.VM_PRIVATE)
        assert stats.snoops_per_transaction() == pytest.approx(4.0)

    def test_miss_rate(self):
        stats = SimStats()
        stats.l1_accesses = 100
        stats.coherence.record_transaction(PageType.VM_PRIVATE, is_write=False)
        assert stats.miss_rate() == pytest.approx(0.01)


class TestSerialization:
    """The JSON round trip campaign checkpoints rely on must be lossless."""

    def test_empty_stats_round_trip(self):
        stats = SimStats()
        assert SimStats.from_dict(stats.to_dict()) == stats

    def test_real_simulation_round_trip(self):
        # Stats produced by an actual run: enum-keyed dicts populated,
        # nested CoherenceStats counters, removal-period lists included.
        from repro.core.filter import SnoopPolicy
        from repro.sim import SimConfig, SimTask, run_simulation_task

        task = SimTask(
            SimConfig.migration_study(
                snoop_policy=SnoopPolicy.VSNOOP_COUNTER,
                migration_period_ms=0.05,
                accesses_per_vcpu=8_000,
                warmup_accesses_per_vcpu=500,
            ),
            "fft",
        )
        stats = run_simulation_task(task)
        assert stats.removal_periods_cycles, "fixture must exercise removals"
        assert stats.migrations > 0
        restored = SimStats.from_dict(stats.to_dict())
        assert restored == stats
        for field in dataclasses.fields(stats):
            assert getattr(restored, field.name) == getattr(stats, field.name), field.name

    def test_round_trip_survives_json(self):
        stats = SimStats()
        stats.l1_accesses = 7
        stats.l1_accesses_by_page_type[PageType.RO_SHARED] = 3
        stats.transactions_by_initiator[Initiator.DOM0] = 2
        stats.removal_periods_cycles = [10, 20, 30]
        stats.coherence.record_transaction(PageType.RW_SHARED, is_write=True)
        stats.coherence.record_snoops(5, PageType.RW_SHARED)
        encoded = json.dumps(stats.to_dict(), sort_keys=True)
        assert SimStats.from_dict(json.loads(encoded)) == stats

    def test_snoop_map_sizes_round_trip_through_json(self):
        stats = SimStats()
        stats.snoop_map_sizes = {1: 4, 2: 7, 10: 16}
        encoded = json.dumps(stats.to_dict(), sort_keys=True)
        decoded = SimStats.from_dict(json.loads(encoded))
        # JSON stringifies the int VM ids; from_dict must undo that.
        assert decoded.snoop_map_sizes == {1: 4, 2: 7, 10: 16}
        assert decoded == stats
        # Omitted while empty so older artifacts stay loadable/identical.
        assert "snoop_map_sizes" not in SimStats().to_dict()

    def test_to_dict_covers_every_field(self):
        data = SimStats().to_dict()
        # sanitizer_violations, metrics and removal_periods_dropped are
        # deliberately omitted while empty so artifacts from runs without
        # those features stay bit-identical to earlier releases.
        expected = {f.name for f in dataclasses.fields(SimStats)}
        expected.discard("sanitizer_violations")
        expected.discard("metrics")
        expected.discard("removal_periods_dropped")
        expected.discard("snoop_map_sizes")
        assert set(data) == expected
        coherence = data["coherence"]
        assert set(coherence) == {f.name for f in dataclasses.fields(CoherenceStats)}

    def test_sanitizer_violations_serialized_when_present(self):
        from repro.sanitizer import SanitizerCheck

        stats = SimStats()
        stats.sanitizer_violations[SanitizerCheck.STATE] = 3
        data = stats.to_dict()
        assert data["sanitizer_violations"] == {"coherence-state": 3}
        assert SimStats.from_dict(data) == stats

    def test_capped_removal_log_round_trips(self):
        # A soak run that overflowed the bounded removal log records how
        # many periods were dropped; the round trip stays lossless for
        # what was kept.
        stats = SimStats()
        stats.removal_periods_cycles = [100, 250]
        stats.removal_periods_dropped = 4_321
        data = stats.to_dict()
        assert data["removal_periods_dropped"] == 4_321
        restored = SimStats.from_dict(json.loads(json.dumps(data, sort_keys=True)))
        assert restored == stats

    def test_soak_run_with_tiny_cap_reports_dropped_periods(self):
        # End-to-end: when migration churn overflows the bounded removal
        # log, the run finishes normally and the stats say what was cut.
        from repro.core.filter import SnoopPolicy
        from repro.sim import SimConfig, build_system, run_simulation
        from repro.workloads.profiles import get_profile

        config = SimConfig.migration_study(
            snoop_policy=SnoopPolicy.VSNOOP_COUNTER,
            migration_period_ms=0.05,
            accesses_per_vcpu=6_000,
            warmup_accesses_per_vcpu=500,
        )
        system = build_system(config, get_profile("ocean"))
        system.snoop_filter.domains.max_removal_log = 1
        run_simulation(system)
        stats = system.stats
        assert len(stats.removal_periods_cycles) == 1
        assert stats.removal_periods_dropped > 0
        restored = SimStats.from_dict(
            json.loads(json.dumps(stats.to_dict(), sort_keys=True))
        )
        assert restored == stats

    def test_metrics_series_round_trips_inside_stats(self):
        from repro.obs.series import MetricsSeries, MetricsWindow

        stats = SimStats()
        stats.metrics = MetricsSeries(
            sample_every=10,
            windows=[MetricsWindow(start=0, width=10, transactions=3, snoops=7)],
        )
        restored = SimStats.from_dict(
            json.loads(json.dumps(stats.to_dict(), sort_keys=True))
        )
        assert restored == stats
        assert isinstance(restored.metrics, MetricsSeries)

    def test_unknown_keys_rejected(self):
        data = SimStats().to_dict()
        data["not_a_field"] = 1
        with pytest.raises(ValueError, match="not_a_field"):
            SimStats.from_dict(data)
        coherence = CoherenceStats().to_dict()
        coherence["bogus"] = 2
        with pytest.raises(ValueError, match="bogus"):
            CoherenceStats.from_dict(coherence)

    def test_enum_keys_serialized_by_value(self):
        data = SimStats().to_dict()
        assert set(data["l1_accesses_by_page_type"]) == {t.value for t in PageType}
        assert set(data["transactions_by_initiator"]) == {i.value for i in Initiator}
