"""Tests for the full-system builder."""

from repro.core.filter import SnoopPolicy
from repro.hypervisor.memory import MemoryManager
from repro.mem.pagetype import PageType
from repro.mem.physical import HostMemory
from repro.sim.config import SimConfig
from repro.sim.system import compute_friends, build_system
from repro.workloads import get_profile


def small_config(**kw):
    defaults = dict(accesses_per_vcpu=100, warmup_accesses_per_vcpu=50)
    defaults.update(kw)
    return SimConfig(**defaults)


class TestBuild:
    def test_builds_all_components(self):
        system = build_system(small_config(), get_profile("fft"))
        assert len(system.caches) == 16
        assert len(system.vms) == 4
        assert len(system.workloads) == 4
        assert system.topology.num_nodes == 16

    def test_initial_placement_contiguous(self):
        system = build_system(small_config(), get_profile("fft"))
        for vm_index, vm in enumerate(system.vms):
            cores = sorted(vm.cores_in_use())
            assert cores == list(range(vm_index * 4, vm_index * 4 + 4))

    def test_snoop_domains_match_placement(self):
        system = build_system(small_config(), get_profile("fft"))
        for vm_index, vm in enumerate(system.vms):
            domain = system.snoop_filter.domains.domain(vm.vm_id)
            assert domain == frozenset(range(vm_index * 4, vm_index * 4 + 4))

    def test_content_sharing_creates_ro_pages(self):
        system = build_system(
            small_config(content_sharing_enabled=True), get_profile("fft")
        )
        shared = list(system.hypervisor.memory.iter_shared_pages())
        assert shared
        # Every VM shares the content pages.
        for _, sharers in shared:
            assert len(sharers) == 4

    def test_content_sharing_disabled_no_ro_pages(self):
        system = build_system(small_config(), get_profile("fft"))
        assert list(system.hypervisor.memory.iter_shared_pages()) == []

    def test_friends_assigned_when_sharing(self):
        system = build_system(
            small_config(content_sharing_enabled=True), get_profile("fft")
        )
        for vm in system.vms:
            assert system.snoop_filter.friend_of(vm.vm_id) is not None

    def test_residence_trackers_attached_to_l2(self):
        system = build_system(small_config(), get_profile("fft"))
        for core, hierarchy in system.caches.items():
            assert hierarchy.l2.observer is system.snoop_filter.trackers[core]


class TestComputeFriends:
    def make_manager(self):
        manager = MemoryManager(HostMemory(64))
        for vm in (1, 2, 3):
            manager.create_address_space(vm)
        return manager

    def test_most_shared_wins(self):
        manager = self.make_manager()
        manager.share_content([(1, 10), (2, 10)])
        manager.share_content([(1, 11), (2, 11)])
        manager.share_content([(1, 12), (3, 12)])
        friends = compute_friends(manager, [1, 2, 3])
        assert friends[1] == 2
        assert friends[2] == 1
        assert friends[3] == 1

    def test_no_sharing_no_friend(self):
        manager = self.make_manager()
        assert compute_friends(manager, [1, 2, 3]) == {}

    def test_phase_breaks_ties(self):
        manager = self.make_manager()
        manager.share_content([(1, 10), (2, 10), (3, 10)])
        friends = compute_friends(
            manager, [1, 2, 3], stream_phases={1: 0, 2: 100, 3: 5}
        )
        assert friends[1] == 3  # phase 5 nearer than phase 100
        assert friends[3] == 1
