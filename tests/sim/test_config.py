"""Tests for the simulation configuration (Table II)."""

import pytest

from repro.core.filter import ContentPolicy, SnoopPolicy
from repro.sim.config import SimConfig


class TestTable2Defaults:
    """The defaults must encode the paper's Table II exactly."""

    def test_processors(self):
        config = SimConfig()
        assert config.num_cores == 16
        assert config.mesh_width == 4 and config.mesh_height == 4

    def test_l1(self):
        config = SimConfig()
        assert config.l1_size == 32 * 1024
        assert config.l1_ways == 4
        assert config.block_size == 64
        assert config.l1_latency == 2

    def test_l2(self):
        config = SimConfig()
        assert config.l2_size == 256 * 1024
        assert config.l2_ways == 8
        assert config.l2_latency == 10

    def test_network(self):
        config = SimConfig()
        assert config.link_bytes == 16
        assert config.router_latency == 4

    def test_vm_setup(self):
        config = SimConfig()
        assert config.num_vms == 4
        assert config.vcpus_per_vm == 4

    def test_section5_semantics(self):
        config = SimConfig()
        assert not config.hypervisor_activity_enabled
        assert not config.content_sharing_enabled


class TestValidation:
    def test_mesh_mismatch(self):
        with pytest.raises(ValueError):
            SimConfig(num_cores=12)

    def test_unknown_topology(self):
        with pytest.raises(ValueError, match="unknown topology"):
            SimConfig(topology="ring")

    def test_torus_checks_grid(self):
        SimConfig(topology="torus")  # 16 == 4x4, fine
        with pytest.raises(ValueError):
            SimConfig(topology="torus", num_cores=12)

    def test_grid_topologies_reject_multiple_sockets(self):
        with pytest.raises(ValueError, match="single-socket"):
            SimConfig(num_sockets=2)

    def test_hierarchical_core_count(self):
        config = SimConfig(
            topology="hierarchical", num_cores=32, num_sockets=2,
            num_vms=8,
        )
        assert config.num_cores == 32
        with pytest.raises(ValueError):
            SimConfig(topology="hierarchical", num_cores=16, num_sockets=2)

    def test_hierarchical_needs_two_sockets(self):
        with pytest.raises(ValueError, match=">= 2 sockets"):
            SimConfig(topology="hierarchical", num_sockets=1)

    def test_hierarchical_hop_cost_positive(self):
        with pytest.raises(ValueError, match="inter_socket_hop_cost"):
            SimConfig(
                topology="hierarchical", num_cores=32, num_sockets=2,
                num_vms=8, inter_socket_hop_cost=0,
            )

    def test_overcommit_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(num_vms=5, vcpus_per_vm=4)

    def test_bad_migration_period(self):
        with pytest.raises(ValueError):
            SimConfig(migration_period_ms=0)

    def test_migration_period_cycles(self):
        config = SimConfig(migration_period_ms=2.5, cycles_per_ms=100_000)
        assert config.migration_period_cycles == 250_000
        assert SimConfig().migration_period_cycles is None


class TestDerivedConfigs:
    def test_with_policy(self):
        config = SimConfig().with_policy(SnoopPolicy.VSNOOP_COUNTER)
        assert config.snoop_policy is SnoopPolicy.VSNOOP_COUNTER
        both = SimConfig().with_policy(
            SnoopPolicy.VSNOOP_BASE, ContentPolicy.MEMORY_DIRECT
        )
        assert both.content_policy is ContentPolicy.MEMORY_DIRECT

    def test_real_time(self):
        assert SimConfig().real_time(2.0).cycles_per_ms == 2_000_000

    def test_migration_study_preset(self):
        config = SimConfig.migration_study(migration_period_ms=5.0)
        assert config.l2_size < SimConfig().l2_size
        assert config.working_set_scale < 1.0
        assert config.migration_period_ms == 5.0
