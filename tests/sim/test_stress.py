"""Kitchen-sink stress tests: every feature enabled at once.

The paper's mechanisms interact: content sharing creates RO pages whose
COWs free host pages; migration shuffles vCPUs while residence counters
shrink vCPU maps; counter-threshold removes cores speculatively and
leans on TokenB retries. These tests run all of it together and assert
the system-wide invariants hold at the end.
"""

from dataclasses import replace

import pytest

from repro.core.filter import ContentPolicy, SnoopPolicy
from repro.sim import SimConfig, SimulationEngine, build_system
from repro.workloads import get_profile


def stress_system(policy, content_policy=ContentPolicy.FRIEND_VM, seed=5):
    profile = replace(
        get_profile("canneal"),
        content_write_fraction=0.005,  # force COW churn
    )
    config = SimConfig.migration_study(
        snoop_policy=policy,
        content_policy=content_policy,
        content_sharing_enabled=True,
        migration_period_ms=0.2,
        accesses_per_vcpu=8_000,
        warmup_accesses_per_vcpu=2_000,
        seed=seed,
    )
    system = build_system(config, profile)
    SimulationEngine(system).run()
    return system


POLICIES = [
    SnoopPolicy.BROADCAST,
    SnoopPolicy.VSNOOP_BASE,
    SnoopPolicy.VSNOOP_COUNTER,
    SnoopPolicy.VSNOOP_COUNTER_THRESHOLD,
]


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
def test_stress_all_features(policy):
    system = stress_system(policy)
    stats = system.stats
    assert stats.total_transactions > 0
    assert stats.migrations > 0
    assert stats.cow_events > 0 or system.hypervisor.memory.cow_faults > 0
    # Registry and caches stayed consistent through migrations, COWs,
    # invalidations, page frees and speculative map removals.
    for core, hierarchy in system.caches.items():
        for line in hierarchy.l2.lines():
            state = system.registry.state_of(line.block)
            assert state is not None and core in state.sharers
    # Residence counters stayed exact.
    for core, hierarchy in system.caches.items():
        actual = {}
        for line in hierarchy.l2.lines():
            if line.vm_id >= 0:
                actual[line.vm_id] = actual.get(line.vm_id, 0) + 1
        tracker = system.snoop_filter.trackers[core]
        for vm in (1, 2, 3, 4):
            assert tracker.count(vm) == actual.get(vm, 0)


@pytest.mark.parametrize(
    "content_policy", list(ContentPolicy), ids=lambda p: p.value
)
def test_stress_content_policies(content_policy):
    system = stress_system(SnoopPolicy.VSNOOP_COUNTER, content_policy)
    assert system.stats.total_transactions > 0


def test_stress_deterministic():
    a = stress_system(SnoopPolicy.VSNOOP_COUNTER_THRESHOLD, seed=9)
    b = stress_system(SnoopPolicy.VSNOOP_COUNTER_THRESHOLD, seed=9)
    assert a.stats.total_snoops == b.stats.total_snoops
    assert a.stats.cow_events == b.stats.cow_events
    assert a.stats.migrations == b.stats.migrations
