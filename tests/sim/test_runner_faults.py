"""Fault tolerance, checkpoint/resume and manifests of the runner.

The guarantees under test:

* one crashing cell never discards the others, and the failure
  identifies the task (index, app) — identically at any job count;
* a worker process dying abruptly, or exceeding the task timeout, is
  recorded as that cell's failure while its siblings complete;
* Ctrl-C mid-campaign keeps the completed cells (persisted when a
  checkpoint directory is active) and the resumed matrix is
  bit-identical — full ``SimStats`` dict diff — to an uninterrupted
  serial run;
* the manifest records tasks, seeds, job count, wall-clock and failures.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.sim import (
    CampaignInterrupted,
    CampaignSettings,
    SimConfig,
    SimTask,
    TaskError,
    WorkerError,
    campaign_settings,
    parallel_map,
    run_matrix,
    run_matrix_detailed,
    set_campaign,
    task_key,
)
from repro.sim.runner import CAMPAIGN_ENV_VAR, run_simulation_task


def small_config(**kw):
    defaults = dict(accesses_per_vcpu=400, warmup_accesses_per_vcpu=200)
    defaults.update(kw)
    return SimConfig(**defaults)


def seed_tasks(*seeds, app="fft"):
    return [SimTask(small_config(seed=seed), app) for seed in seeds]


# Module-level task functions so the fork/spawn workers can import them.


def _misbehaving(task):
    if task.app == "crash":
        raise RuntimeError("injected crash")
    if task.app == "die":
        os._exit(17)
    if task.app == "sleep":
        time.sleep(60)
    return run_simulation_task(task)


def _interrupt_on_seed(task):
    if task.config.seed == 3:
        raise KeyboardInterrupt
    return run_simulation_task(task)


_FLAKY_CALLS = {"count": 0}


def _flaky(task):
    _FLAKY_CALLS["count"] += 1
    if _FLAKY_CALLS["count"] == 1:
        raise RuntimeError("transient failure")
    return run_simulation_task(task)


def _square_or_boom(x):
    if x == 2:
        raise ValueError("x is two")
    return x * x


class TestCrashIsolation:
    def test_injected_crash_keeps_other_cells(self):
        tasks = [
            SimTask(small_config(seed=1), "fft"),
            SimTask(small_config(seed=2), "crash"),
            SimTask(small_config(seed=3), "fft"),
        ]
        results = run_matrix_detailed(tasks, jobs=3, task_fn=_misbehaving)
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert "injected crash" in results[1].error
        # The surviving cells match a clean serial run bit-for-bit.
        clean = run_matrix([tasks[0], tasks[2]], jobs=1)
        assert results[0].stats.to_dict() == clean[0].to_dict()
        assert results[2].stats.to_dict() == clean[1].to_dict()

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_run_matrix_identifies_failed_task(self, jobs):
        tasks = [
            SimTask(small_config(seed=1), "fft"),
            SimTask(small_config(seed=2), "no-such-app"),
            SimTask(small_config(seed=3), "fft"),
        ]
        with pytest.raises(TaskError) as excinfo:
            run_matrix(tasks, jobs=jobs)
        assert excinfo.value.index == 1
        assert excinfo.value.task.app == "no-such-app"
        assert "no-such-app" in str(excinfo.value)

    def test_worker_death_recorded_with_exit_code(self):
        tasks = [SimTask(small_config(seed=1), "fft"), SimTask(small_config(seed=2), "die")]
        results = run_matrix_detailed(tasks, jobs=2, task_fn=_misbehaving)
        assert results[0].ok
        assert "exit code 17" in results[1].error

    def test_task_timeout_terminates_only_the_hung_cell(self):
        tasks = [SimTask(small_config(seed=1), "fft"), SimTask(small_config(seed=2), "sleep")]
        start = time.monotonic()
        results = run_matrix_detailed(
            tasks, jobs=2, task_fn=_misbehaving, task_timeout=1.5
        )
        assert time.monotonic() - start < 30
        assert results[0].ok
        assert "timed out" in results[1].error

    def test_retries_recover_a_transient_failure(self):
        _FLAKY_CALLS["count"] = 0
        tasks = seed_tasks(1)
        results = run_matrix_detailed(tasks, jobs=1, task_fn=_flaky, retries=1)
        assert results[0].ok
        assert results[0].attempts == 2


class TestParallelMapFailures:
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_failure_identifies_index_and_chains_cause(self, jobs):
        with pytest.raises(WorkerError) as excinfo:
            parallel_map(_square_or_boom, range(5), jobs=jobs)
        assert excinfo.value.index == 2
        assert excinfo.value.item == 2
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert "x is two" in str(excinfo.value)

    def test_success_unchanged(self):
        assert parallel_map(_square_or_boom, [0, 1, 3], jobs=2) == [0, 1, 9]


class TestCheckpointResume:
    def test_interrupt_persists_partials_and_resume_is_bit_identical(self, tmp_path):
        tasks = seed_tasks(1, 2, 3, 4)
        with pytest.raises(CampaignInterrupted) as excinfo:
            run_matrix_detailed(
                tasks, jobs=1, checkpoint_dir=str(tmp_path),
                task_fn=_interrupt_on_seed, label="ki",
            )
        partial = excinfo.value.results
        assert sum(1 for r in partial if r.ok) == 2
        assert all("interrupted" in r.error for r in partial if not r.ok)
        manifest = json.loads((tmp_path / "manifest-ki.json").read_text())
        assert manifest["interrupted"] is True
        assert manifest["totals"]["ok"] == 2

    def test_resume_runs_only_missing_cells(self, tmp_path, monkeypatch):
        # Store off: this test pins down *checkpoint* semantics, and a
        # cell another test already pushed into the session store would
        # otherwise surface here as from_store instead of a fresh run.
        monkeypatch.setenv("REPRO_STORE", "off")
        tasks = seed_tasks(1, 2, 3, 4)
        with pytest.raises(CampaignInterrupted):
            run_matrix_detailed(
                tasks, jobs=1, checkpoint_dir=str(tmp_path),
                task_fn=_interrupt_on_seed, label="ki",
            )
        resumed = run_matrix_detailed(
            tasks, jobs=1, checkpoint_dir=str(tmp_path), label="ki"
        )
        assert [r.from_checkpoint for r in resumed] == [True, True, False, False]
        fresh = run_matrix(tasks, jobs=1)
        resumed_dicts = [r.stats.to_dict() for r in resumed]
        fresh_dicts = [s.to_dict() for s in fresh]
        assert resumed_dicts == fresh_dicts
        manifest = json.loads((tmp_path / "manifest-ki.json").read_text())
        assert manifest["interrupted"] is False
        assert manifest["totals"] == {
            "tasks": 4, "ok": 4, "failed": 0, "from_checkpoint": 2,
            "from_store": 0,
            "wall_seconds": manifest["totals"]["wall_seconds"],
        }

    def test_failed_cell_is_not_checkpointed_and_reruns(self, tmp_path):
        tasks = [SimTask(small_config(seed=1), "fft"), SimTask(small_config(seed=2), "crash")]
        first = run_matrix_detailed(
            tasks, jobs=1, checkpoint_dir=str(tmp_path), task_fn=_misbehaving
        )
        assert first[0].ok and not first[1].ok
        second = run_matrix_detailed(
            tasks, jobs=1, checkpoint_dir=str(tmp_path), task_fn=_misbehaving
        )
        assert second[0].from_checkpoint
        assert not second[1].from_checkpoint and not second[1].ok

    def test_corrupt_checkpoint_treated_as_missing(self, tmp_path):
        tasks = seed_tasks(1)
        run_matrix_detailed(tasks, jobs=1, checkpoint_dir=str(tmp_path))
        cell = tmp_path / f"{task_key(tasks[0])}.json"
        cell.write_text("{ truncated")
        results = run_matrix_detailed(tasks, jobs=1, checkpoint_dir=str(tmp_path))
        assert results[0].ok and not results[0].from_checkpoint

    def test_parallel_resume_matches_serial(self, tmp_path):
        tasks = seed_tasks(1, 2, 3)
        run_matrix_detailed(tasks[:2], jobs=2, checkpoint_dir=str(tmp_path))
        resumed = run_matrix(tasks, jobs=2, checkpoint_dir=str(tmp_path))
        fresh = run_matrix(tasks, jobs=1)
        assert [s.to_dict() for s in resumed] == [s.to_dict() for s in fresh]


class TestTaskKey:
    def test_stable_across_equal_tasks(self):
        a = SimTask(small_config(seed=1), "fft")
        b = SimTask(small_config(seed=1), "fft")
        assert task_key(a) == task_key(b)

    def test_distinguishes_config_app_and_seed(self):
        base = SimTask(small_config(seed=1), "fft")
        assert task_key(base) != task_key(SimTask(small_config(seed=2), "fft"))
        assert task_key(base) != task_key(SimTask(small_config(seed=1), "ocean"))
        assert task_key(base) != task_key(
            SimTask(small_config(seed=1, accesses_per_vcpu=401), "fft")
        )


class TestManifest:
    def test_records_tasks_jobs_and_failures(self, tmp_path):
        tasks = [
            SimTask(small_config(seed=11), "fft"),
            SimTask(small_config(seed=12), "crash"),
        ]
        run_matrix_detailed(
            tasks, jobs=1, checkpoint_dir=str(tmp_path),
            task_fn=_misbehaving, label="mf",
        )
        manifest = json.loads((tmp_path / "manifest-mf.json").read_text())
        assert manifest["jobs"] == 1
        assert manifest["git_rev"]
        entries = manifest["tasks"]
        assert [e["seed"] for e in entries] == [11, 12]
        assert [e["app"] for e in entries] == ["fft", "crash"]
        assert entries[0]["ok"] and entries[0]["us_per_access"] > 0
        assert not entries[1]["ok"] and "injected crash" in entries[1]["error"]
        assert manifest["failures"] == [entries[1]["key"]]
        assert all(e["wall_seconds"] >= 0 for e in entries)

    def test_unlabelled_matrix_gets_digest_named_manifest(self, tmp_path):
        run_matrix_detailed(seed_tasks(1), jobs=1, checkpoint_dir=str(tmp_path))
        manifests = list(tmp_path.glob("manifest-*.json"))
        assert len(manifests) == 1


class TestCampaignSettings:
    def test_env_var_supplies_default_checkpoint_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CAMPAIGN_ENV_VAR, str(tmp_path))
        assert campaign_settings().checkpoint_dir == str(tmp_path)
        run_matrix(seed_tasks(1), jobs=1)
        assert list(tmp_path.glob("*.json"))

    def test_set_campaign_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CAMPAIGN_ENV_VAR, "/nonexistent")
        set_campaign(CampaignSettings(checkpoint_dir=str(tmp_path), retries=2))
        try:
            settings = campaign_settings()
            assert settings.checkpoint_dir == str(tmp_path)
            assert settings.retries == 2
        finally:
            set_campaign(None)

    def test_default_is_no_campaign(self, monkeypatch):
        monkeypatch.delenv(CAMPAIGN_ENV_VAR, raising=False)
        settings = campaign_settings()
        assert settings.checkpoint_dir is None
        assert settings.retries == 0
        assert settings.task_timeout is None
