"""The parallel experiment runner: job resolution, ordering, determinism.

The load-bearing guarantee is bit-identical statistics at any job count:
a worker process rebuilds its system from the pickled config exactly as
the serial path does, so every RNG stream — and therefore every counter
— must come out the same. The determinism test compares a serial run
against ``jobs=4`` field by field across the whole SimStats surface.
"""

import dataclasses
import os

import pytest

from repro.core.filter import SnoopPolicy
from repro.sim import (
    SimConfig,
    SimTask,
    default_jobs,
    parallel_map,
    run_matrix,
    run_simulation_task,
    set_default_jobs,
)
from repro.sim.runner import JOBS_ENV_VAR, parse_jobs


@pytest.fixture(autouse=True)
def _reset_default_jobs():
    yield
    set_default_jobs(None)


def small_config(**kw):
    defaults = dict(accesses_per_vcpu=800, warmup_accesses_per_vcpu=400)
    defaults.update(kw)
    return SimConfig(**defaults)


class TestParseJobs:
    def test_unset_means_serial(self):
        assert parse_jobs(None) == 1
        assert parse_jobs("") == 1

    def test_auto_means_cpu_count(self):
        assert parse_jobs("auto") == (os.cpu_count() or 1)
        assert parse_jobs("0") == (os.cpu_count() or 1)

    def test_explicit_count(self):
        assert parse_jobs("3") == 3
        assert parse_jobs(" 2 ") == 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            parse_jobs("-1")

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_jobs("many")


class TestDefaultJobs:
    def test_env_var_respected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "5")
        assert default_jobs() == 5

    def test_set_default_overrides_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "5")
        set_default_jobs(2)
        assert default_jobs() == 2

    def test_unset_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert default_jobs() == 1


def _square(x):
    return x * x


class TestParallelMap:
    def test_serial_preserves_order(self):
        assert parallel_map(_square, range(6), jobs=1) == [0, 1, 4, 9, 16, 25]

    def test_parallel_preserves_order(self):
        assert parallel_map(_square, range(6), jobs=3) == [0, 1, 4, 9, 16, 25]

    def test_empty_input(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_jobs_capped_to_items(self):
        # More jobs than items must not fail (pool is sized down).
        assert parallel_map(_square, [7], jobs=8) == [49]


def stats_fields(stats):
    """Every SimStats field as plain comparable data (field by field)."""
    out = {}
    for field in dataclasses.fields(stats):
        out[field.name] = getattr(stats, field.name)
    return out


class TestDeterminism:
    def test_serial_equals_jobs4_field_by_field(self):
        tasks = [
            SimTask(small_config(snoop_policy=SnoopPolicy.VSNOOP_BASE, seed=3), "fft"),
            SimTask(small_config(snoop_policy=SnoopPolicy.BROADCAST, seed=3), "fft"),
            SimTask(
                small_config(
                    snoop_policy=SnoopPolicy.VSNOOP_COUNTER,
                    migration_period_ms=0.5,
                    seed=9,
                ),
                "ocean",
            ),
        ]
        serial = run_matrix(tasks, jobs=1)
        parallel = run_matrix(tasks, jobs=4)
        assert len(serial) == len(parallel) == len(tasks)
        for task, s_stats, p_stats in zip(tasks, serial, parallel):
            s_fields = stats_fields(s_stats)
            p_fields = stats_fields(p_stats)
            for name, s_value in s_fields.items():
                assert p_fields[name] == s_value, (
                    f"{task.app}/{task.config.snoop_policy}: field {name!r} "
                    f"differs between serial and parallel"
                )
            # The nested coherence counters, field by field as well.
            for field in dataclasses.fields(s_stats.coherence):
                assert getattr(p_stats.coherence, field.name) == getattr(
                    s_stats.coherence, field.name
                ), f"coherence field {field.name!r} differs"

    def test_worker_matches_inline_run(self):
        task = SimTask(small_config(seed=5), "radix")
        inline = run_simulation_task(task)
        pooled = run_matrix([task], jobs=2)[0]
        assert stats_fields(inline) == stats_fields(pooled)
