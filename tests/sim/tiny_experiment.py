"""A minimal experiment driver used by the CLI campaign tests.

Registered into ``repro.cli.EXPERIMENTS`` under a test-only name so the
``experiment --out/--resume`` wiring can be exercised end-to-end with a
two-cell matrix instead of a full paper figure.
"""

from repro.sim import SimConfig, SimTask
from repro.experiments.common import run_tasks


def tiny_tasks():
    config = SimConfig(accesses_per_vcpu=300, warmup_accesses_per_vcpu=150)
    return [SimTask(config, "fft"), SimTask(config, "ocean")]


def main() -> None:
    results = run_tasks(tiny_tasks(), label="tiny")
    for task, stats in zip(tiny_tasks(), results):
        print(f"{task.app}: {stats.total_snoops} snoops")
