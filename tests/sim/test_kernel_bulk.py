"""Differential and unit tests for the bulk-miss seam (DESIGN §6).

The seam applies eligible same-VM private misses inline in the batched
kernel instead of descending through ``_transact``. Everything here
pins its hard edges: migration windows and metrics samples landing in
the middle of a bulk run, dirty/shared victims forcing mid-run
bail-outs, deadline-clamped refills under a tiny ``REPRO_KERNEL_BLOCK``,
sanitized runs disabling the seam entirely, and the bail-out histogram
that records why misses stayed on the reference path. All differential
assertions are byte-equality of ``SimStats.to_dict()`` — the seam's
contract is exactness, not approximation.
"""

import json
from dataclasses import replace

import pytest

from repro.cache.hierarchy import PrivateHierarchy
from repro.cache.setassoc import SetAssociativeCache
from repro.coherence.plan import RequestPlan
from repro.core.filter import SnoopPolicy
from repro.mem.pagetype import PageType
from repro.sim.config import SimConfig
from repro.sim.kernel import BatchedEngine, engine_for
from repro.sim.system import build_system
from repro.workloads.profiles import PROFILES

# Small caches + a read-heavy zipfian suite: most accesses miss and most
# misses are seam-eligible (clean VM-local victims), so every downstream
# assertion exercises the inline path heavily.
MISS_HEAVY = SimConfig(
    l1_size=4 * 1024,
    l2_size=16 * 1024,
    suite="web-farm",
    accesses_per_vcpu=4000,
    warmup_accesses_per_vcpu=500,
)

# The write-heavy counterpart: the backup service's ~95% store mix keeps
# L2 victims dirty, so misses continually bail out mid-run.
WRITE_HEAVY = replace(MISS_HEAVY, suite="backup-window")


def run_system(config: SimConfig, app: str = "fft"):
    system = build_system(config, PROFILES[app])
    engine = engine_for(system)
    engine.run()
    return system, engine


def run_stats(config: SimConfig, app: str = "fft") -> str:
    system, _ = run_system(config, app)
    return json.dumps(system.stats.to_dict(), sort_keys=True)


def assert_identical(config: SimConfig, app: str = "fft") -> None:
    reference = run_stats(replace(config, kernel="reference"), app)
    batched = run_stats(replace(config, kernel="batched"), app)
    assert batched == reference


class TestBulkDifferential:
    def test_miss_heavy_cell(self):
        assert_identical(MISS_HEAVY)

    def test_migration_window_mid_bulk_run(self):
        # Tiny migration periods land windows inside runs of inline
        # misses; the boundary fold must stop the chunk exactly there.
        assert_identical(
            replace(
                MISS_HEAVY,
                migration_period_ms=0.05,
                snoop_policy=SnoopPolicy.VSNOOP_COUNTER,
            )
        )

    def test_metrics_sample_on_bulk_transacted_access(self):
        # Samples every ~2k cycles fall on accesses the seam applied
        # inline; the sampled network/memory counters must already be
        # flushed (the seam batches traffic per transaction, never
        # across one).
        assert_identical(replace(MISS_HEAVY, metrics_sample_every=2000))

    def test_dirty_victim_bails_mid_run(self):
        assert_identical(WRITE_HEAVY)

    def test_dirty_victims_with_migration(self):
        assert_identical(
            replace(
                WRITE_HEAVY,
                migration_period_ms=0.1,
                snoop_policy=SnoopPolicy.VSNOOP_COUNTER,
            )
        )

    def test_counter_threshold_retry_plans(self):
        # COUNTER_THRESHOLD plans carry a retry ladder; only misses whose
        # first attempt provably succeeds may stay inline.
        assert_identical(
            replace(
                MISS_HEAVY,
                snoop_policy=SnoopPolicy.VSNOOP_COUNTER_THRESHOLD,
                counter_threshold=3,
            )
        )

    def test_deadline_clamped_word_refills(self, monkeypatch):
        # Tiny word blocks force constant refills while migration and
        # metrics deadlines clamp the chunk boundaries; packed-mirror
        # validation runs at every phase end.
        monkeypatch.setenv("REPRO_KERNEL_BLOCK", "32")
        monkeypatch.setenv("REPRO_KERNEL_VALIDATE", "1")
        assert_identical(
            SimConfig(
                num_cores=4,
                mesh_width=2,
                mesh_height=2,
                num_vms=2,
                vcpus_per_vm=2,
                l1_size=2 * 1024,
                l2_size=8 * 1024,
                accesses_per_vcpu=600,
                warmup_accesses_per_vcpu=200,
                migration_period_ms=0.2,
                metrics_sample_every=3000,
            )
        )

    def test_deadline_clamped_chunk_refills(self, monkeypatch):
        # Same deadlines on the chunk path (pattern workloads refill via
        # stream_chunk): the refill size must clamp to the next
        # coherence-visible deadline up front.
        monkeypatch.setenv("REPRO_KERNEL_VALIDATE", "1")
        assert_identical(
            replace(
                MISS_HEAVY,
                migration_period_ms=0.05,
                metrics_sample_every=2000,
                accesses_per_vcpu=2000,
            )
        )


class TestSanitizedBulk:
    def test_sanitizer_disables_seam_and_stays_clean(self):
        config = replace(MISS_HEAVY, sanitize=True, accesses_per_vcpu=2000)
        outputs = {}
        for kernel in ("reference", "batched"):
            system, engine = run_system(replace(config, kernel=kernel))
            assert system.sanitizer.violation_count == 0
            if kernel == "batched":
                # The seam is gated off under any observer: every miss
                # must have taken the reference path the sanitizer
                # shadows.
                summary = engine.bulk_summary()
                assert summary["bulk_transacts"] == 0
                assert summary["bailouts"] == {}
            outputs[kernel] = json.dumps(system.stats.to_dict(), sort_keys=True)
        assert outputs["batched"] == outputs["reference"]


class TestBailHistogram:
    def test_miss_heavy_majority_inline(self):
        _, engine = run_system(replace(MISS_HEAVY, kernel="batched"))
        summary = engine.bulk_summary()
        bulk = summary["bulk_transacts"]
        bailed = sum(summary["bailouts"].values())
        assert bulk > 0
        # The acceptance bar for the miss-heavy cell: at least half of
        # the seam-visible private misses commit inline.
        assert bulk / (bulk + bailed) >= 0.5

    def test_write_heavy_records_dirty_victims(self):
        _, engine = run_system(replace(WRITE_HEAVY, kernel="batched"))
        summary = engine.bulk_summary()
        assert summary["bailouts"].get("victim-dirty", 0) > 0

    def test_summary_is_sorted_and_detached(self):
        _, engine = run_system(replace(MISS_HEAVY, kernel="batched"))
        summary = engine.bulk_summary()
        reasons = list(summary["bailouts"])
        assert reasons == sorted(reasons)
        # Mutating the summary must not touch the engine's live counters.
        summary["bailouts"]["fake"] = 1
        assert "fake" not in engine.bulk_summary()["bailouts"]

    def test_counters_reset_between_measurements(self):
        system = build_system(
            replace(MISS_HEAVY, kernel="batched", accesses_per_vcpu=1500),
            PROFILES["fft"],
        )
        engine = engine_for(system)
        assert isinstance(engine, BatchedEngine)
        clocks = engine.warm()
        # The measurement boundary zeroes the histogram with the rest of
        # the measurement state: the warm-up phase ran plenty of inline
        # misses, but the summary after warm() reports none of them.
        warm_summary = engine.bulk_summary()
        assert warm_summary["bulk_transacts"] == 0
        assert warm_summary["bailouts"] == {}
        engine.measure(clocks)
        measured = engine.bulk_summary()
        # The measured phase's counts only.
        assert measured["bulk_transacts"] > 0

    def test_reference_engine_has_no_summary(self):
        system = build_system(
            replace(MISS_HEAVY, kernel="reference"), PROFILES["fft"]
        )
        engine = engine_for(system)
        assert not hasattr(engine, "bulk_summary")


class TestVictimPeek:
    def test_peek_matches_insert(self):
        cache = SetAssociativeCache(num_sets=2, ways=2)
        # Fill set 0 (blocks 0, 2): next insert into set 0 evicts LRU 0.
        cache.insert(0, vm_id=1)
        cache.insert(2, vm_id=1)
        predicted = cache.peek_victim(4)
        assert predicted is not None and predicted.block == 0
        actual = cache.insert(4, vm_id=2)
        assert actual is predicted

    def test_peek_no_eviction_cases(self):
        cache = SetAssociativeCache(num_sets=2, ways=2)
        cache.insert(0, vm_id=1)
        assert cache.peek_victim(2) is None  # set not full
        cache.insert(2, vm_id=1)
        assert cache.peek_victim(0) is None  # already resident

    def test_peek_is_pure(self):
        from repro.cache.setassoc import CacheObserver

        events = []

        class Spy(CacheObserver):
            def on_evict(self, line):
                events.append(("evict", line.block))

            def on_insert(self, line):
                events.append(("insert", line.block))

        cache = SetAssociativeCache(num_sets=1, ways=2, observer=Spy())
        cache.insert(0, vm_id=1)
        cache.insert(1, vm_id=1)
        events.clear()
        before = list(cache._sets[0])
        cache.peek_victim(2)
        # No observer events, no LRU touch, no mutation.
        assert events == []
        assert list(cache._sets[0]) == before

    def test_hierarchy_fill_victim_delegates(self):
        hierarchy = PrivateHierarchy(
            core_id=0, l1_size=128, l1_ways=1, l2_size=256, l2_ways=1,
            block_size=64,
        )
        hierarchy.fill(0, vm_id=1)
        predicted = hierarchy.fill_victim(4)
        assert predicted is not None and predicted.block == 0
        victim = hierarchy.fill(4, vm_id=1)
        assert victim is predicted


class TestPlanProperties:
    def test_first_attempt_and_single_attempt(self):
        single = RequestPlan(attempts=(frozenset({1, 2}),))
        assert single.first_attempt == frozenset({1, 2})
        assert single.single_attempt
        ladder = RequestPlan(
            attempts=(frozenset({1}), frozenset({1, 2, 3})),
            page_type=PageType.VM_PRIVATE,
        )
        assert ladder.first_attempt == frozenset({1})
        assert not ladder.single_attempt
