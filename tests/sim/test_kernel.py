"""Differential tests for the batched simulation kernel.

Every test here asserts the same thing at a different seam: a batched
run's ``SimStats.to_dict()`` is *equal* — not statistically close — to
the reference engine's on the identical configuration. The boundary
cases target exactly the places a chunked kernel can silently diverge:
migration windows and metrics samples landing inside a chunk, COW
writes and shared-line evictions bailing out mid-chunk, refills landing
on access boundaries (``REPRO_KERNEL_BLOCK=32``), chunk size 1 via a
single-access budget, and trace-replay exhaustion mid-phase.
"""

import json
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filter import ContentPolicy, SnoopPolicy
from repro.sim.config import SimConfig
from repro.sim.engine import SimulationEngine
from repro.sim.kernel import BatchedEngine, engine_for, stream_chunk_shim
from repro.sim.system import build_system
from repro.workloads.generator import VmWorkload
from repro.workloads.profiles import PROFILES
from repro.workloads.tracefile import TraceReplayWorkload, record_workload

BASE = SimConfig(
    num_cores=4,
    mesh_width=2,
    mesh_height=2,
    num_vms=2,
    vcpus_per_vm=2,
    accesses_per_vcpu=600,
    warmup_accesses_per_vcpu=200,
)


def run_stats(config: SimConfig, app: str = "fft") -> str:
    system = build_system(config, PROFILES[app])
    engine_for(system).run()
    return json.dumps(system.stats.to_dict(), sort_keys=True)


def assert_identical(config: SimConfig, app: str = "fft") -> None:
    reference = run_stats(replace(config, kernel="reference"), app)
    batched = run_stats(replace(config, kernel="batched"), app)
    assert batched == reference


class TestDifferential:
    def test_plain(self):
        assert_identical(BASE)

    @pytest.mark.parametrize("app", ["lu", "ocean"])
    def test_other_profiles(self, app):
        assert_identical(BASE, app)

    def test_broadcast_policy(self):
        assert_identical(replace(BASE, snoop_policy=SnoopPolicy.BROADCAST))

    def test_counter_threshold_policy(self):
        assert_identical(
            replace(
                BASE,
                snoop_policy=SnoopPolicy.VSNOOP_COUNTER_THRESHOLD,
                counter_threshold=3,
            )
        )

    def test_migration_windows_inside_chunks(self):
        assert_identical(
            replace(
                BASE,
                migration_period_ms=0.2,
                snoop_policy=SnoopPolicy.VSNOOP_COUNTER,
            )
        )

    def test_metrics_samples_inside_chunks(self):
        assert_identical(
            replace(BASE, metrics_sample_every=5000, migration_period_ms=0.2)
        )

    def test_cow_writes_bail_out(self):
        # Content sharing makes first writes to shared frames COW-split.
        assert_identical(
            replace(
                BASE,
                content_sharing_enabled=True,
                content_policy=ContentPolicy.INTRA_VM,
            )
        )

    def test_shared_line_evictions_under_pressure(self):
        # Caches small enough that shared lines are continually evicted
        # at chunk edges, exercising the eviction/writeback bail-out.
        assert_identical(
            replace(
                BASE,
                l1_size=1024,
                l2_size=4096,
                migration_period_ms=0.1,
                content_sharing_enabled=True,
                hypervisor_activity_enabled=True,
            )
        )

    def test_hypervisor_dom0_streams(self):
        assert_identical(replace(BASE, hypervisor_activity_enabled=True))

    def test_everything_at_once(self):
        assert_identical(
            replace(
                BASE,
                migration_period_ms=0.3,
                content_sharing_enabled=True,
                hypervisor_activity_enabled=True,
                content_policy=ContentPolicy.INTRA_VM,
                snoop_policy=SnoopPolicy.VSNOOP_COUNTER,
            )
        )

    def test_regionscout_filter(self):
        assert_identical(replace(BASE, filter_kind="regionscout"))

    def test_zero_budget(self):
        assert_identical(
            replace(BASE, accesses_per_vcpu=0, warmup_accesses_per_vcpu=0)
        )

    def test_single_access_budget(self):
        # Chunk size clamps to 1: the smallest possible batched phase.
        assert_identical(
            replace(BASE, accesses_per_vcpu=1, warmup_accesses_per_vcpu=1)
        )


class TestRefillEdges:
    def test_tiny_word_blocks(self, monkeypatch):
        # 32-word refills land mid-access constantly; validation walks
        # the packed cache mirror at every phase end.
        monkeypatch.setenv("REPRO_KERNEL_BLOCK", "32")
        monkeypatch.setenv("REPRO_KERNEL_VALIDATE", "1")
        assert_identical(
            replace(
                BASE,
                migration_period_ms=0.3,
                content_sharing_enabled=True,
                hypervisor_activity_enabled=True,
            )
        )


class TestEngineSelection:
    def test_explicit_kernels_honoured(self):
        for kernel, expected in (
            ("reference", SimulationEngine),
            ("batched", BatchedEngine),
        ):
            system = build_system(replace(BASE, kernel=kernel), PROFILES["fft"])
            assert type(engine_for(system)) is expected

    def test_batched_forced_with_sanitizer(self):
        system = build_system(
            replace(BASE, kernel="batched", sanitize=True), PROFILES["fft"]
        )
        assert type(engine_for(system)) is BatchedEngine

    def test_auto_defers_to_observers(self, monkeypatch):
        # An explicit REPRO_KERNEL (as the CI differential lanes set)
        # legitimately overrides auto; neutralise it to test the default.
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        system = build_system(
            replace(BASE, kernel="auto", sanitize=True), PROFILES["fft"]
        )
        assert type(engine_for(system)) is SimulationEngine

    def test_auto_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "reference")
        system = build_system(replace(BASE, kernel="auto"), PROFILES["fft"])
        assert type(engine_for(system)) is SimulationEngine


class TestSanitizedBatched:
    def test_sanitizer_clean_and_identical_under_batched(self):
        config = replace(
            BASE,
            sanitize=True,
            migration_period_ms=0.3,
            content_sharing_enabled=True,
            hypervisor_activity_enabled=True,
            snoop_policy=SnoopPolicy.VSNOOP_COUNTER,
            content_policy=ContentPolicy.INTRA_VM,
        )
        outputs = {}
        for kernel in ("reference", "batched"):
            system = build_system(replace(config, kernel=kernel), PROFILES["fft"])
            engine_for(system).run()
            assert system.sanitizer.violation_count == 0
            outputs[kernel] = json.dumps(system.stats.to_dict(), sort_keys=True)
        assert outputs["batched"] == outputs["reference"]


class TestTraceReplay:
    def _trace_system(self, kernel: str, loop: bool):
        config = replace(
            BASE, kernel=kernel, accesses_per_vcpu=500, warmup_accesses_per_vcpu=100
        )
        profile = PROFILES["fft"]
        system = build_system(config, profile)
        for vm_id, workload in list(system.workloads.items()):
            source = VmWorkload(
                profile,
                vm_id=vm_id,
                num_vcpus=workload.num_vcpus,
                seed=config.seed,
                working_set_scale=config.working_set_scale,
            )
            # Fewer accesses than the phases consume: wraps when looping,
            # exhausts mid-phase otherwise.
            accesses = record_workload(source, 450)
            system.workloads[vm_id] = TraceReplayWorkload(
                vm_id,
                accesses,
                workload.num_vcpus,
                loop=loop,
                content_page_labels=list(source.content_pages()),
            )
        return system

    @pytest.mark.parametrize("loop", [True, False])
    def test_chunk_path_matches_reference(self, loop):
        outputs = {}
        for kernel in ("reference", "batched"):
            system = self._trace_system(kernel, loop)
            error = None
            try:
                engine_for(system).run()
            except StopIteration as exc:
                error = str(exc)
            outputs[kernel] = (
                json.dumps(system.stats.to_dict(), sort_keys=True),
                error,
            )
        assert outputs["batched"] == outputs["reference"]
        if not loop:
            assert outputs["batched"][1] is not None  # exhaustion surfaced


class TestChunkShim:
    def test_shim_matches_next_access(self):
        profile = PROFILES["fft"]
        shimmed = VmWorkload(profile, vm_id=1, num_vcpus=2)
        control = VmWorkload(profile, vm_id=1, num_vcpus=2)
        chunk = stream_chunk_shim(shimmed, 0, 50)
        expected = []
        for _ in range(50):
            access = control.next_access(0)
            expected.append(
                (
                    access.initiator,
                    access.guest_page,
                    access.block_index,
                    access.is_write,
                )
            )
        assert chunk == expected


@settings(max_examples=8, deadline=None)
@given(
    params=st.fixed_dictionaries(
        {
            "seed": st.integers(0, 2**16),
            "snoop_policy": st.sampled_from(list(SnoopPolicy)),
            "migration_period_ms": st.sampled_from([None, 0.05, 0.2]),
            "content_sharing_enabled": st.booleans(),
            "hypervisor_activity_enabled": st.booleans(),
        }
    )
)
def test_property_batched_is_bit_identical(params):
    config = replace(
        BASE,
        l1_size=1024,
        l1_ways=2,
        l2_size=4096,
        l2_ways=4,
        working_set_scale=0.15,
        accesses_per_vcpu=400,
        warmup_accesses_per_vcpu=150,
        **params,
    )
    assert_identical(config)
