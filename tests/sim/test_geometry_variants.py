"""Tests for non-default system geometries."""

import pytest

from repro.core.filter import SnoopPolicy
from repro.sim import SimConfig, build_system, run_simulation
from repro.workloads import get_profile


class TestEightCoreHost:
    """The Figure 1 shape: 8 cores (4x2), 2 VMs x 4 vCPUs."""

    def config(self, **kw):
        defaults = dict(
            num_cores=8, mesh_width=4, mesh_height=2,
            num_vms=2, vcpus_per_vm=4,
            accesses_per_vcpu=1200, warmup_accesses_per_vcpu=800,
        )
        defaults.update(kw)
        return SimConfig(**defaults)

    def test_runs(self):
        system = run_simulation(build_system(self.config(), get_profile("fft")))
        assert system.stats.total_transactions > 0
        assert len(system.caches) == 8

    def test_ideal_snoop_share_is_half(self):
        # 2 VMs x 4 cores on 8 cores: the domain is half the machine.
        system = run_simulation(build_system(
            self.config(snoop_policy=SnoopPolicy.VSNOOP_BASE), get_profile("fft")
        ))
        ratio = system.stats.total_snoops / (8 * system.stats.total_transactions)
        assert ratio == pytest.approx(0.5, abs=0.03)


class TestTwoVmSixteenCores:
    def test_underpopulated_machine(self):
        """VMs need not cover every core; spare cores are never snooped
        for private data."""
        config = SimConfig(
            num_vms=2, vcpus_per_vm=4,
            snoop_policy=SnoopPolicy.VSNOOP_BASE,
            accesses_per_vcpu=1200, warmup_accesses_per_vcpu=800,
        )
        system = run_simulation(build_system(config, get_profile("fft")))
        ratio = system.stats.total_snoops / (16 * system.stats.total_transactions)
        assert ratio == pytest.approx(0.25, abs=0.03)


class TestTorusHost:
    def test_runs_and_filters(self):
        config = SimConfig(
            topology="torus",
            snoop_policy=SnoopPolicy.VSNOOP_BASE,
            accesses_per_vcpu=1200, warmup_accesses_per_vcpu=800,
        )
        system = run_simulation(build_system(config, get_profile("fft")))
        assert type(system.topology).__name__ == "TorusTopology"
        ratio = system.stats.total_snoops / (16 * system.stats.total_transactions)
        assert ratio == pytest.approx(0.25, abs=0.03)

    def test_wraparound_lowers_latency_vs_mesh(self):
        # Same trace, same policy: the torus halves worst-case hop counts
        # so total execution cycles must not increase.
        kw = dict(
            snoop_policy=SnoopPolicy.BROADCAST,
            accesses_per_vcpu=1200, warmup_accesses_per_vcpu=800,
        )
        mesh = run_simulation(build_system(SimConfig(**kw), get_profile("fft")))
        torus = run_simulation(
            build_system(SimConfig(topology="torus", **kw), get_profile("fft"))
        )
        assert torus.stats.execution_cycles <= mesh.stats.execution_cycles


class TestHierarchicalHost:
    """Two 4x4 sockets, 8 VMs: the consolidation building block."""

    def config(self, **kw):
        defaults = dict(
            topology="hierarchical", num_cores=32, num_sockets=2,
            mesh_width=4, mesh_height=4, num_vms=8, vcpus_per_vm=4,
            accesses_per_vcpu=1000, warmup_accesses_per_vcpu=600,
        )
        defaults.update(kw)
        return SimConfig(**defaults)

    def test_runs_on_32_cores(self):
        system = run_simulation(build_system(self.config(), get_profile("fft")))
        assert len(system.caches) == 32
        assert system.stats.total_transactions > 0

    def test_vsnoop_filters_most_of_the_host(self):
        # 8 VMs x 4 vCPUs on 32 cores: each map covers ~1/8 of the host.
        system = run_simulation(build_system(
            self.config(snoop_policy=SnoopPolicy.VSNOOP_BASE),
            get_profile("fft"),
        ))
        ratio = system.stats.total_snoops / (32 * system.stats.total_transactions)
        assert ratio == pytest.approx(0.125, abs=0.03)
        sizes = system.stats.snoop_map_sizes
        assert len(sizes) == 8
        assert all(size <= 8 for size in sizes.values())

    def test_sanitized_run_is_clean(self):
        system = run_simulation(build_system(
            self.config(
                snoop_policy=SnoopPolicy.VSNOOP_COUNTER, sanitize=True,
                migration_period_ms=0.05, cycles_per_ms=84_000,
            ),
            get_profile("fft"),
        ))
        assert system.stats.sanitizer_violations == {}
        assert system.stats.migrations > 0


class TestSingleVm:
    def test_domain_is_whole_vm(self):
        config = SimConfig(
            num_vms=1, vcpus_per_vm=4,
            snoop_policy=SnoopPolicy.VSNOOP_BASE,
            accesses_per_vcpu=800, warmup_accesses_per_vcpu=400,
        )
        system = run_simulation(build_system(config, get_profile("fft")))
        assert system.stats.total_transactions > 0
        domain = system.snoop_filter.domains.domain(system.vms[0].vm_id)
        assert domain == frozenset(range(4))
