"""Tests for non-default system geometries."""

import pytest

from repro.core.filter import SnoopPolicy
from repro.sim import SimConfig, build_system, run_simulation
from repro.workloads import get_profile


class TestEightCoreHost:
    """The Figure 1 shape: 8 cores (4x2), 2 VMs x 4 vCPUs."""

    def config(self, **kw):
        defaults = dict(
            num_cores=8, mesh_width=4, mesh_height=2,
            num_vms=2, vcpus_per_vm=4,
            accesses_per_vcpu=1200, warmup_accesses_per_vcpu=800,
        )
        defaults.update(kw)
        return SimConfig(**defaults)

    def test_runs(self):
        system = run_simulation(build_system(self.config(), get_profile("fft")))
        assert system.stats.total_transactions > 0
        assert len(system.caches) == 8

    def test_ideal_snoop_share_is_half(self):
        # 2 VMs x 4 cores on 8 cores: the domain is half the machine.
        system = run_simulation(build_system(
            self.config(snoop_policy=SnoopPolicy.VSNOOP_BASE), get_profile("fft")
        ))
        ratio = system.stats.total_snoops / (8 * system.stats.total_transactions)
        assert ratio == pytest.approx(0.5, abs=0.03)


class TestTwoVmSixteenCores:
    def test_underpopulated_machine(self):
        """VMs need not cover every core; spare cores are never snooped
        for private data."""
        config = SimConfig(
            num_vms=2, vcpus_per_vm=4,
            snoop_policy=SnoopPolicy.VSNOOP_BASE,
            accesses_per_vcpu=1200, warmup_accesses_per_vcpu=800,
        )
        system = run_simulation(build_system(config, get_profile("fft")))
        ratio = system.stats.total_snoops / (16 * system.stats.total_transactions)
        assert ratio == pytest.approx(0.25, abs=0.03)


class TestSingleVm:
    def test_domain_is_whole_vm(self):
        config = SimConfig(
            num_vms=1, vcpus_per_vm=4,
            snoop_policy=SnoopPolicy.VSNOOP_BASE,
            accesses_per_vcpu=800, warmup_accesses_per_vcpu=400,
        )
        system = run_simulation(build_system(config, get_profile("fft")))
        assert system.stats.total_transactions > 0
        domain = system.snoop_filter.domains.domain(system.vms[0].vm_id)
        assert domain == frozenset(range(4))
