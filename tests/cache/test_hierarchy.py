"""Tests for the per-core L1/L2 hierarchy."""

from repro.cache.hierarchy import AccessResult, PrivateHierarchy


def small_hierarchy(**kwargs):
    defaults = dict(
        core_id=0,
        l1_size=4 * 64,  # 4 lines
        l1_ways=2,
        l2_size=16 * 64,  # 16 lines
        l2_ways=4,
    )
    defaults.update(kwargs)
    return PrivateHierarchy(**defaults)


class TestAccessPath:
    def test_cold_miss(self):
        h = small_hierarchy()
        result = h.access(0x100, vm_id=1, is_write=False)
        assert result.level == AccessResult.MISS
        assert not result.hit
        assert h.misses == 1

    def test_fill_then_l1_hit(self):
        h = small_hierarchy()
        h.access(0x100, vm_id=1, is_write=False)
        h.fill(0x100, vm_id=1)
        result = h.access(0x100, vm_id=1, is_write=False)
        assert result.level == AccessResult.L1
        assert result.latency == h.l1_latency

    def test_l2_hit_promotes_to_l1(self):
        h = small_hierarchy()
        h.fill(0x1, vm_id=1)
        # Push 0x1 out of the 4-line L1 (2 sets) with odd blocks that
        # spread across the 4 L2 sets so 0x1 stays resident in L2.
        for block in (0x3, 0x5, 0x7, 0x9):
            h.fill(block, vm_id=1)
        result = h.access(0x1, vm_id=1, is_write=False)
        assert result.level == AccessResult.L2
        assert h.access(0x1, vm_id=1, is_write=False).level == AccessResult.L1

    def test_write_marks_dirty_both_levels(self):
        h = small_hierarchy()
        h.fill(0x5, vm_id=1)
        h.access(0x5, vm_id=1, is_write=True)
        assert h.is_dirty(0x5)


class TestInclusion:
    def test_l2_eviction_drops_l1_copy(self):
        h = small_hierarchy(l2_size=4 * 64, l2_ways=1)  # 4 sets, direct-mapped
        h.fill(0x0, vm_id=1)
        victim = h.fill(0x4, vm_id=1)  # same L2 set as 0x0
        assert victim is not None and victim.block == 0x0
        assert not h.l1.contains(0x0)
        assert not h.contains(0x0)

    def test_invalidate_clears_both(self):
        h = small_hierarchy()
        h.fill(0x7, vm_id=1)
        line = h.invalidate(0x7)
        assert line is not None
        assert not h.l1.contains(0x7)
        assert not h.l2.contains(0x7)

    def test_fill_returns_dirty_victim(self):
        h = small_hierarchy(l2_size=4 * 64, l2_ways=1)
        h.fill(0x0, vm_id=1, dirty=True)
        victim = h.fill(0x4, vm_id=1)
        assert victim.dirty

    def test_l1_invariant_subset_of_l2(self):
        h = small_hierarchy()
        for block in range(0, 64, 2):
            h.fill(block, vm_id=1)
            h.access(block, vm_id=1, is_write=False)
        l2_blocks = {line.block for line in h.l2.lines()}
        for line in h.l1.lines():
            assert line.block in l2_blocks


class TestCounters:
    def test_hit_counters(self):
        h = small_hierarchy()
        h.access(0x9, vm_id=1, is_write=False)  # miss
        h.fill(0x9, vm_id=1)
        h.access(0x9, vm_id=1, is_write=False)  # L1 hit
        assert h.total_accesses == 2
        assert h.l1_hits == 1
        assert h.misses == 1
