"""Tests for the set-associative cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.setassoc import CacheObserver, SetAssociativeCache


class RecordingObserver(CacheObserver):
    def __init__(self):
        self.inserts = []
        self.evicts = []
        self.invalidates = []

    def on_insert(self, line):
        self.inserts.append(line.block)

    def on_evict(self, line):
        self.evicts.append(line.block)

    def on_invalidate(self, line):
        self.invalidates.append(line.block)


class TestGeometry:
    def test_from_size(self):
        cache = SetAssociativeCache.from_size(256 * 1024, ways=8, block_size=64)
        assert cache.capacity_lines == 4096
        assert cache.num_sets == 512
        assert cache.ways == 8

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(num_sets=3, ways=4)
        with pytest.raises(ValueError):
            SetAssociativeCache(num_sets=4, ways=0)


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = SetAssociativeCache(num_sets=4, ways=2)
        assert cache.lookup(0x10) is None
        cache.insert(0x10, vm_id=1)
        line = cache.lookup(0x10)
        assert line is not None
        assert line.vm_id == 1

    def test_lru_eviction_order(self):
        cache = SetAssociativeCache(num_sets=1, ways=2)
        cache.insert(1, vm_id=0)
        cache.insert(2, vm_id=0)
        cache.lookup(1)  # 1 becomes MRU; 2 is now LRU
        victim = cache.insert(3, vm_id=0)
        assert victim is not None
        assert victim.block == 2

    def test_insert_existing_refreshes_no_evict(self):
        obs = RecordingObserver()
        cache = SetAssociativeCache(num_sets=1, ways=2, observer=obs)
        cache.insert(1, vm_id=0)
        cache.insert(1, vm_id=0, dirty=True)
        assert obs.inserts == [1]
        assert cache.lookup(1).dirty

    def test_same_set_conflict(self):
        # Blocks 0 and 4 map to set 0 of a 4-set cache.
        cache = SetAssociativeCache(num_sets=4, ways=1)
        cache.insert(0, vm_id=0)
        victim = cache.insert(4, vm_id=0)
        assert victim.block == 0


class TestInvalidateAndFlush:
    def test_invalidate_returns_line(self):
        cache = SetAssociativeCache(num_sets=4, ways=2)
        cache.insert(0x20, vm_id=2, dirty=True)
        line = cache.invalidate(0x20)
        assert line.dirty
        assert cache.lookup(0x20) is None

    def test_invalidate_missing_is_none(self):
        cache = SetAssociativeCache(num_sets=4, ways=2)
        assert cache.invalidate(0x99) is None

    def test_flush_vm_removes_only_that_vm(self):
        cache = SetAssociativeCache(num_sets=4, ways=4)
        for block in range(8):
            cache.insert(block, vm_id=block % 2)
        removed = cache.flush_vm(0)
        assert {l.block for l in removed} == {0, 2, 4, 6}
        assert all(l.vm_id == 1 for l in cache.lines())

    def test_mark_dirty_missing_raises(self):
        cache = SetAssociativeCache(num_sets=4, ways=2)
        with pytest.raises(KeyError):
            cache.mark_dirty(0x5)


class TestObserverEvents:
    def test_events_fire(self):
        obs = RecordingObserver()
        cache = SetAssociativeCache(num_sets=1, ways=1, observer=obs)
        cache.insert(1, vm_id=0)
        cache.insert(2, vm_id=0)  # evicts 1
        cache.invalidate(2)
        assert obs.inserts == [1, 2]
        assert obs.evicts == [1]
        assert obs.invalidates == [2]


@settings(max_examples=50)
@given(st.lists(st.integers(0, 200), min_size=1, max_size=300))
def test_property_capacity_never_exceeded(blocks):
    cache = SetAssociativeCache(num_sets=4, ways=2)
    for block in blocks:
        cache.insert(block, vm_id=0)
        assert cache.resident_count() <= cache.capacity_lines
    # Every resident block must be findable.
    for line in cache.lines():
        assert cache.lookup(line.block, touch=False) is line


@settings(max_examples=50)
@given(st.lists(st.integers(0, 100), min_size=1, max_size=200))
def test_property_observer_balance(blocks):
    """inserts - evicts - invalidates == resident lines."""
    obs = RecordingObserver()
    cache = SetAssociativeCache(num_sets=2, ways=2, observer=obs)
    for i, block in enumerate(blocks):
        if i % 5 == 4:
            cache.invalidate(block)
        else:
            cache.insert(block, vm_id=0)
    resident = cache.resident_count()
    assert len(obs.inserts) - len(obs.evicts) - len(obs.invalidates) == resident


class TestPackedMirror:
    def test_packed_reflects_lru_order(self):
        cache = SetAssociativeCache(num_sets=1, ways=4)
        for block in (1, 2, 3):
            cache.insert(block, vm_id=7)
        cache.lookup(1)  # 1 becomes most recent: LRU order 2, 3, 1
        tags, vm_ids, dirty = cache.packed()
        assert [int(t) for t in tags] == [2, 3, 1, -1]
        assert [int(v) for v in vm_ids] == [7, 7, 7, -1]
        assert [bool(d) for d in dirty] == [False, False, False, False]

    def test_packed_tracks_dirty_and_eviction(self):
        cache = SetAssociativeCache(num_sets=1, ways=2)
        cache.insert(10, vm_id=1, dirty=True)
        cache.insert(20, vm_id=2)
        cache.insert(30, vm_id=3)  # evicts 10 (LRU)
        tags, vm_ids, dirty = cache.packed()
        assert [int(t) for t in tags] == [20, 30]
        assert [bool(d) for d in dirty] == [False, False]
        cache.mark_dirty(20)
        _tags, _vm_ids, dirty = cache.packed()
        assert [bool(d) for d in dirty] == [True, False]

    def test_packed_set_major_layout(self):
        cache = SetAssociativeCache(num_sets=2, ways=2)
        cache.insert(4, vm_id=0)  # set 0
        cache.insert(5, vm_id=0)  # set 1
        tags, _vm_ids, _dirty = cache.packed()
        assert [int(t) for t in tags] == [4, -1, 5, -1]

    def test_validate_packed_accepts_heavy_churn(self):
        cache = SetAssociativeCache(num_sets=4, ways=2)
        for i in range(300):
            cache.insert(i * 7 % 64, vm_id=i % 3, dirty=i % 2 == 0)
            if i % 11 == 0:
                cache.invalidate(i % 64)
            if i % 17 == 0:
                cache.lookup(i * 7 % 64)
        cache.validate_packed()

    def test_validate_packed_detects_corruption(self):
        cache = SetAssociativeCache(num_sets=2, ways=2)
        cache.insert(0, vm_id=0)
        # Plant a line whose tag belongs to the other set.
        line = cache.lookup(0, touch=False)
        cache._sets[0][3] = line.__class__(3, 0, False)
        with pytest.raises(AssertionError):
            cache.validate_packed()
