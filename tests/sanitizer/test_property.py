"""Property test: under randomly drawn migration-heavy configurations,
every policy runs sanitizer-clean AND the sanitizer leaves the simulation
bit-identical to a sanitizer-less run of the same configuration."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filter import SnoopPolicy
from repro.sim import SimConfig, build_system
from repro.sim.engine import SimulationEngine
from repro.workloads import get_profile

configs = st.fixed_dictionaries(
    {
        "snoop_policy": st.sampled_from(list(SnoopPolicy)),
        "seed": st.integers(0, 2**16),
        "migration_period_ms": st.sampled_from([0.02, 0.05, 0.1]),
        "content_sharing_enabled": st.booleans(),
        "hypervisor_activity_enabled": st.booleans(),
    }
)


def run(params, sanitize):
    config = SimConfig(
        num_cores=4,
        mesh_width=2,
        mesh_height=2,
        num_vms=2,
        vcpus_per_vm=2,
        l1_size=1024,
        l1_ways=2,
        l2_size=4096,
        l2_ways=4,
        working_set_scale=0.15,
        accesses_per_vcpu=800,
        warmup_accesses_per_vcpu=300,
        sanitize=sanitize,
        **params,
    )
    system = build_system(config, get_profile("fft"))
    SimulationEngine(system).run()
    return system


@settings(max_examples=10, deadline=None)
@given(params=configs)
def test_migration_heavy_runs_are_clean_and_unperturbed(params):
    sanitized = run(params, sanitize=True)
    sanitizer = sanitized.sanitizer
    # Clean: nothing raised during the run (raise mode), audit included.
    assert sanitizer.violation_count == 0
    assert sanitizer.summary()["plans_checked"] > 0
    # Unperturbed: the shadow layer must not change a single counter.
    plain = run(params, sanitize=False)
    assert sanitized.stats.to_dict() == plain.stats.to_dict()


@settings(max_examples=6, deadline=None)
@given(params=configs)
def test_batched_kernel_is_sanitizer_clean_and_bit_identical(params):
    """Forcing the batched kernel under the sanitizer must stay clean
    and reproduce the reference engine's stats byte-for-byte — the
    bail-out seams feed the sanitizer an unchanged event stream."""
    from repro.sim.kernel import BatchedEngine, engine_for

    config = SimConfig(
        num_cores=4,
        mesh_width=2,
        mesh_height=2,
        num_vms=2,
        vcpus_per_vm=2,
        l1_size=1024,
        l1_ways=2,
        l2_size=4096,
        l2_ways=4,
        working_set_scale=0.15,
        accesses_per_vcpu=800,
        warmup_accesses_per_vcpu=300,
        sanitize=True,
        kernel="batched",
        **params,
    )
    batched = build_system(config, get_profile("fft"))
    engine = engine_for(batched)
    assert isinstance(engine, BatchedEngine)
    engine.run()
    assert batched.sanitizer.violation_count == 0
    reference = run(params, sanitize=True)
    assert batched.stats.to_dict() == reference.stats.to_dict()
