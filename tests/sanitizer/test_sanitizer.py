"""The sanitizer proves clean runs clean and catches injected corruption.

Each corruption test runs a short healthy simulation, then breaks ONE
piece of state by hand (a vCPU map entry, a residence counter, a registry
sharer set, the shadow itself) and asserts the audit attributes the break
to the right check. That demonstrates the checks are live — a sanitizer
that never fires proves nothing.
"""

import pytest

from repro.cli import main
from repro.core.filter import SnoopPolicy
from repro.sanitizer import MAX_KEPT_VIOLATIONS, SanitizerCheck, SanitizerViolation
from repro.sim import SimConfig, build_system, run_simulation
from repro.sim.engine import SimulationEngine
from repro.sim.stats import SimStats
from repro.workloads import get_profile

SMALL = dict(
    l1_size=4 * 1024,
    l2_size=32 * 1024,
    working_set_scale=0.15,
    accesses_per_vcpu=600,
    warmup_accesses_per_vcpu=300,
)


def small_config(**overrides):
    params = dict(SMALL)
    params.update(overrides)
    return SimConfig(sanitize=True, **params)


def run_small(**overrides):
    config = small_config(**overrides)
    system = build_system(config, get_profile("fft"))
    engine = SimulationEngine(system)
    engine.run()
    return system


# ----------------------------------------------------------------------
# Clean runs stay clean.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("policy", list(SnoopPolicy))
def test_clean_run_has_no_violations(policy):
    system = run_small(snoop_policy=policy, migration_period_ms=0.05)
    sanitizer = system.sanitizer
    assert sanitizer is not None
    assert sanitizer.violation_count == 0
    summary = sanitizer.summary()
    assert summary["plans_checked"] > 0
    assert summary["transactions_checked"] > 0
    assert summary["events_checked"] > 0
    assert summary["audits"] >= 1


def test_speculative_misses_only_under_threshold_policy():
    for policy in (SnoopPolicy.BROADCAST, SnoopPolicy.VSNOOP_BASE,
                   SnoopPolicy.VSNOOP_COUNTER):
        system = run_small(snoop_policy=policy, migration_period_ms=0.05)
        assert system.sanitizer.summary()["filter_misses"] == 0, policy


def test_threshold_filter_misses_are_matched_by_charged_retries():
    """Acceptance criterion: every needed retry is really charged.

    A speculative miss needs a retry only when the missed core matters
    to the request (a read whose owner token sits at memory completes on
    the first attempt even if a clean copy was missed), so
    ``retried_filter_misses`` is a subset of ``filter_misses``. The
    per-transaction RETRY check (violations == 0) proves each predicted
    retry was charged; the totals prove both paths are exercised.
    """
    config = SimConfig.migration_study(
        snoop_policy=SnoopPolicy.VSNOOP_COUNTER_THRESHOLD,
        migration_period_ms=0.05,
        accesses_per_vcpu=24_000,
        warmup_accesses_per_vcpu=2_000,
        sanitize=True,
    )
    system = run_simulation(build_system(config, get_profile("fft")))
    summary = system.sanitizer.summary()
    assert summary["violations"] == 0
    assert summary["retried_filter_misses"] <= summary["filter_misses"]
    assert summary["filter_misses"] > 0, (
        "config no longer exercises the speculative path; regrow the run"
    )
    assert summary["retried_filter_misses"] > 0, (
        "config no longer exercises the retry path; regrow the run"
    )
    assert system.stats.coherence.retries >= summary["retried_filter_misses"]


def test_sanitized_run_is_bit_identical_to_unsanitized():
    kwargs = dict(
        SMALL, snoop_policy=SnoopPolicy.VSNOOP_COUNTER, migration_period_ms=0.05
    )
    sanitized = build_system(SimConfig(sanitize=True, **kwargs), get_profile("fft"))
    SimulationEngine(sanitized).run()
    plain = build_system(SimConfig(**kwargs), get_profile("fft"))
    SimulationEngine(plain).run()
    assert sanitized.stats.to_dict() == plain.stats.to_dict()


# ----------------------------------------------------------------------
# Injected corruption is caught and attributed correctly.
# ----------------------------------------------------------------------


def test_domain_corruption_raises_domain_violation():
    system = run_small()
    domains = system.snoop_filter.domains
    vm = system.vms[0].vm_id
    victim = next(iter(sorted(domains.domain(vm))))
    domains._domains[vm].discard(victim)
    with pytest.raises(SanitizerViolation) as exc:
        system.sanitizer.audit()
    assert exc.value.check is SanitizerCheck.DOMAIN
    assert exc.value.core == victim


def test_tracker_corruption_raises_residence_violation():
    system = run_small()
    tracker = system.snoop_filter.trackers[0]
    vm = next(iter(tracker.counts()))
    tracker._counts[vm] += 1
    with pytest.raises(SanitizerViolation) as exc:
        system.sanitizer.audit()
    assert exc.value.check is SanitizerCheck.RESIDENCE
    assert exc.value.core == 0


def test_registry_corruption_raises_state_violation():
    system = run_small()
    block, state = next(iter(system.registry._blocks.items()))
    state.sharers.add(max(system.caches) + 7)  # a core that holds nothing
    with pytest.raises(SanitizerViolation) as exc:
        system.sanitizer.audit()
    assert exc.value.check is SanitizerCheck.STATE
    assert exc.value.block == block


def test_shadow_corruption_raises_shadow_violation():
    system = run_small()
    shadow = system.sanitizer.shadows[0]
    block = next(iter(shadow.blocks))
    del shadow.blocks[block]
    with pytest.raises(SanitizerViolation) as exc:
        system.sanitizer.audit()
    assert exc.value.check is SanitizerCheck.SHADOW
    assert exc.value.core == 0


def test_violation_carries_structured_context():
    system = run_small()
    domains = system.snoop_filter.domains
    vm = system.vms[0].vm_id
    domains._domains[vm].clear()
    with pytest.raises(SanitizerViolation) as exc:
        system.sanitizer.audit()
    violation = exc.value
    assert violation.check is SanitizerCheck.DOMAIN
    assert violation.vm_id == vm
    payload = violation.to_dict()
    assert payload["check"] == "domain-soundness"
    assert isinstance(payload["cycle"], int)
    assert str(violation.cycle) in str(violation)


# ----------------------------------------------------------------------
# Counting mode.
# ----------------------------------------------------------------------


def test_count_mode_records_into_stats_without_raising():
    system = run_small(sanitize_mode="count")
    sanitizer = system.sanitizer
    tracker = system.snoop_filter.trackers[0]
    vm = next(iter(tracker.counts()))
    tracker._counts[vm] += 1
    sanitizer.audit()  # must not raise
    assert sanitizer.violation_count >= 1
    assert system.stats.sanitizer_violations[SanitizerCheck.RESIDENCE] >= 1
    assert sanitizer.violations[0].check is SanitizerCheck.RESIDENCE

    payload = system.stats.to_dict()
    assert "sanitizer_violations" in payload
    assert payload["sanitizer_violations"]["residence-counter"] >= 1
    round_trip = SimStats.from_dict(payload)
    assert round_trip.sanitizer_violations == system.stats.sanitizer_violations


def test_count_mode_caps_kept_objects_but_not_counters():
    system = run_small(sanitize_mode="count")
    sanitizer = system.sanitizer
    for _ in range(MAX_KEPT_VIOLATIONS + 10):
        sanitizer.report(
            SanitizerViolation(SanitizerCheck.STATE, "synthetic", cycle=0)
        )
    assert len(sanitizer.violations) == MAX_KEPT_VIOLATIONS
    assert (
        system.stats.sanitizer_violations[SanitizerCheck.STATE]
        == MAX_KEPT_VIOLATIONS + 10
    )


def test_stats_omit_sanitizer_key_when_clean():
    system = run_small()
    payload = system.stats.to_dict()
    assert "sanitizer_violations" not in payload
    assert SimStats.from_dict(payload).sanitizer_violations == {}


# ----------------------------------------------------------------------
# Config plumbing and CLI.
# ----------------------------------------------------------------------


def test_config_rejects_unknown_sanitize_mode():
    with pytest.raises(ValueError):
        SimConfig(sanitize_mode="explode")


def test_sanitizer_absent_by_default():
    system = build_system(SimConfig(**SMALL), get_profile("fft"))
    assert system.sanitizer is None


def test_regionscout_runs_under_sanitizer():
    # The baseline filter has no ResidenceTrackers or vCPU maps; the
    # sanitizer must degrade to the shadow/state checks, not crash.
    system = run_small(filter_kind="regionscout")
    assert system.sanitizer.violation_count == 0


def test_cli_run_sanitize_prints_summary(capsys):
    code = main([
        "run", "--app", "fft", "--policy", "counter",
        "--accesses", "500", "--warmup", "200", "--sanitize",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "sanitizer" in out
    assert "violations" in out
