"""Tests for the credit-scheduler simulation."""

import pytest

from repro.hypervisor.scheduler import (
    CreditSchedulerSim,
    SchedulerConfig,
    SchedulerResult,
)
from repro.workloads import get_profile
from repro.workloads.profiles import AppProfile


def quick_profile(**kw):
    defaults = dict(
        name="synthetic",
        suite="parsec",
        run_burst_ms=5.0,
        block_ms=1.0,
        io_wakes_per_sec=50.0,
        work_ms_per_vcpu=200.0,
    )
    defaults.update(kw)
    return AppProfile(**defaults)


class TestConfigValidation:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            SchedulerConfig(policy="random")

    def test_rejects_bad_tick(self):
        with pytest.raises(ValueError):
            SchedulerConfig(tick_ms=0)


class TestCompletion:
    def test_all_work_completes(self):
        sim = CreditSchedulerSim(SchedulerConfig(), quick_profile(), num_vms=2)
        result = sim.run()
        assert result.wall_ms > 0
        assert len(result.vm_finish_ms) == 2
        assert all(v.state == "done" for v in sim.vcpus)

    def test_wall_time_bounded_below_by_work(self):
        profile = quick_profile(work_ms_per_vcpu=100.0)
        result = CreditSchedulerSim(SchedulerConfig(), profile, num_vms=2).run()
        assert result.wall_ms >= 100.0

    def test_overcommit_takes_longer(self):
        profile = quick_profile()
        under = CreditSchedulerSim(SchedulerConfig(), profile, num_vms=2).run()
        over = CreditSchedulerSim(SchedulerConfig(), profile, num_vms=4).run()
        assert over.wall_ms > under.wall_ms


class TestDeterminism:
    def test_same_seed_same_result(self):
        profile = quick_profile()
        a = CreditSchedulerSim(SchedulerConfig(seed=3), profile, num_vms=2).run()
        b = CreditSchedulerSim(SchedulerConfig(seed=3), profile, num_vms=2).run()
        assert a.wall_ms == b.wall_ms
        assert a.guest_migrations == b.guest_migrations


class TestPolicies:
    def test_pinned_never_migrates(self):
        profile = quick_profile()
        result = CreditSchedulerSim(
            SchedulerConfig(policy="pinned"), profile, num_vms=4
        ).run()
        assert result.guest_migrations == 0

    def test_credit_migrates_when_overcommitted(self):
        profile = quick_profile()
        result = CreditSchedulerSim(
            SchedulerConfig(policy="credit"), profile, num_vms=4
        ).run()
        assert result.guest_migrations > 0

    def test_paper_shape_overcommitted_pinning_slower(self):
        profile = quick_profile(work_ms_per_vcpu=400.0)
        pinned = CreditSchedulerSim(
            SchedulerConfig(policy="pinned"), profile, num_vms=4
        ).run()
        credit = CreditSchedulerSim(
            SchedulerConfig(policy="credit"), profile, num_vms=4
        ).run()
        assert pinned.wall_ms > credit.wall_ms

    def test_paper_shape_undercommitted_pinning_competitive(self):
        profile = get_profile("canneal")
        pinned = CreditSchedulerSim(
            SchedulerConfig(policy="pinned"), profile, num_vms=2
        ).run()
        credit = CreditSchedulerSim(
            SchedulerConfig(policy="credit"), profile, num_vms=2
        ).run()
        assert pinned.wall_ms <= credit.wall_ms * 1.05


class TestUnderWaitingRecompute:
    """Dispatching the last waiting UNDER vCPU must clear ``under_waiting``
    for the rest of the tick (regression: it was only recomputed after an
    OVER dispatch, so later cores spuriously preempted their OVER guests
    — resetting their slices and inflating migration churn)."""

    def _one_under_many_over(self):
        profile = quick_profile(io_wakes_per_sec=0.0)
        sim = CreditSchedulerSim(
            SchedulerConfig(num_cores=3, policy="credit", dom0_vcpus=0),
            profile,
            num_vms=3,
            vcpus_per_vm=1,
        )
        under, over1, over2 = sim.vcpus
        under.credits = 30.0
        over1.credits = over2.credits = -5.0
        for queue in sim._queues:
            queue.clear()
        # Cores 1 and 2 run OVER guests mid-burst; core 0 is idle and the
        # only UNDER vCPU waits in its queue.
        running = [None, over1, over2]
        for vcpu, core in ((over1, 1), (over2, 2)):
            vcpu.state = "running"
            vcpu.last_core = core
            vcpu.slice_left = 7.5
            vcpu.burst_left = 10.0
        under.state = "runnable"
        under.last_core = 0
        under.burst_left = 5.0
        sim._queues[0].append(under)
        return sim, running, under, over1, over2

    def test_last_under_dispatch_stops_preemption(self):
        sim, running, under, over1, over2 = self._one_under_many_over()
        sim._fill_cores(running)
        # Core 0 takes the UNDER vCPU; that consumed the last waiting
        # UNDER, so cores 1 and 2 must keep their OVER guests running
        # undisturbed (no preempt-and-restart resetting their slices).
        assert running[0] is under
        assert running[1] is over1 and over1.state == "running"
        assert running[2] is over2 and over2.state == "running"
        assert over1.slice_left == 7.5
        assert over2.slice_left == 7.5

    def test_waiting_under_still_preempts_over(self):
        # Control: with a second UNDER vCPU still waiting after core 0
        # dispatches, core 1's OVER guest must be preempted for it.
        sim, running, under, over1, over2 = self._one_under_many_over()
        extra = sim.vcpus[0].__class__(4, 0, sim.profile)
        extra.credits = 30.0
        extra.state = "runnable"
        extra.last_core = 0
        extra.burst_left = 5.0
        sim.vcpus.append(extra)
        sim._queues[0].append(extra)
        sim._fill_cores(running)
        assert running[0] is under
        assert running[1] is extra
        assert over1.state == "runnable"


class TestClusteredPolicy:
    def test_rejects_bad_cluster_factor(self):
        with pytest.raises(ValueError):
            SchedulerConfig(policy="clustered", cluster_factor=0.5)

    def test_vcpus_never_leave_their_cluster(self):
        profile = quick_profile()
        sim = CreditSchedulerSim(
            SchedulerConfig(policy="clustered", cluster_factor=1.5),
            profile,
            num_vms=4,
        )
        sim.run()
        for vcpu in sim.vcpus:
            assert vcpu.allowed_cores is not None
            assert vcpu.last_core in vcpu.allowed_cores

    def test_clustered_between_pinned_and_credit(self):
        profile = quick_profile(work_ms_per_vcpu=400.0)
        walls = {}
        for policy in ("pinned", "clustered", "credit"):
            walls[policy] = CreditSchedulerSim(
                SchedulerConfig(policy=policy), profile, num_vms=4
            ).run().wall_ms
        assert walls["clustered"] <= walls["pinned"] * 1.02
        assert walls["clustered"] >= walls["credit"] * 0.95

    def test_cluster_window_size(self):
        profile = quick_profile()
        sim = CreditSchedulerSim(
            SchedulerConfig(policy="clustered", cluster_factor=1.5),
            profile,
            num_vms=4,
        )
        for vcpu in sim.vcpus:
            assert len(vcpu.allowed_cores) == 6  # 4 vCPUs x 1.5


class TestRelocationPeriod:
    def test_period_infinite_without_migrations(self):
        result = SchedulerResult(
            wall_ms=100.0, vm_finish_ms={}, guest_migrations=0,
            guest_vcpus=8, dom0_wakes=0,
        )
        assert result.relocation_period_ms == float("inf")

    def test_period_formula(self):
        result = SchedulerResult(
            wall_ms=100.0, vm_finish_ms={}, guest_migrations=50,
            guest_vcpus=8, dom0_wakes=0,
        )
        assert result.relocation_period_ms == pytest.approx(16.0)

    def test_io_heavy_app_migrates_more(self):
        calm = quick_profile(io_wakes_per_sec=5.0, run_burst_ms=50.0)
        busy = quick_profile(io_wakes_per_sec=500.0, run_burst_ms=1.0, block_ms=0.5)
        calm_result = CreditSchedulerSim(SchedulerConfig(), calm, num_vms=2).run()
        busy_result = CreditSchedulerSim(SchedulerConfig(), busy, num_vms=2).run()
        assert (
            busy_result.relocation_period_ms < calm_result.relocation_period_ms
        )
