"""Tests for VM and vCPU objects."""

import pytest

from repro.hypervisor.vm import DOM0_VM_ID, FIRST_GUEST_VM_ID, VCpu, VirtualMachine


class TestVirtualMachine:
    def test_creates_vcpus(self):
        vm = VirtualMachine(3, 4)
        assert vm.num_vcpus == 4
        assert [v.index for v in vm.vcpus] == [0, 1, 2, 3]
        assert all(v.vm_id == 3 for v in vm.vcpus)

    def test_rejects_zero_vcpus(self):
        with pytest.raises(ValueError):
            VirtualMachine(1, 0)

    def test_default_name(self):
        assert VirtualMachine(7, 1).name == "vm7"
        assert VirtualMachine(7, 1, name="web").name == "web"

    def test_cores_in_use_skips_descheduled(self):
        vm = VirtualMachine(1, 3)
        vm.vcpus[0].core = 5
        vm.vcpus[2].core = 9
        assert sorted(vm.cores_in_use()) == [5, 9]


class TestVCpu:
    def test_global_name(self):
        assert VCpu(2, 1).global_name == "vm2.vcpu1"

    def test_starts_descheduled(self):
        assert VCpu(1, 0).core is None


def test_dom0_id_precedes_guests():
    assert DOM0_VM_ID < FIRST_GUEST_VM_ID
