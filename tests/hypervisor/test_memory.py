"""Tests for guest-physical -> host-physical memory management."""

import pytest

from repro.hypervisor.memory import MemoryManager, TranslationFault
from repro.mem.pagetype import PageType
from repro.mem.physical import HostMemory


def make_manager(pages=64):
    manager = MemoryManager(HostMemory(pages))
    manager.create_address_space(1)
    manager.create_address_space(2)
    return manager


class TestMapping:
    def test_lazy_translation_maps_private(self):
        manager = make_manager()
        host, page_type = manager.translate(1, 100)
        assert page_type is PageType.VM_PRIVATE
        assert manager.owner_of(host) == 1

    def test_translation_is_stable(self):
        manager = make_manager()
        first, _ = manager.translate(1, 100)
        second, _ = manager.translate(1, 100)
        assert first == second

    def test_vms_get_distinct_host_pages(self):
        manager = make_manager()
        host1, _ = manager.translate(1, 100)
        host2, _ = manager.translate(2, 100)
        assert host1 != host2

    def test_double_map_rejected(self):
        manager = make_manager()
        manager.map_page(1, 100)
        with pytest.raises(ValueError):
            manager.map_page(1, 100)

    def test_unknown_space_faults(self):
        manager = make_manager()
        with pytest.raises(TranslationFault):
            manager.translate(9, 100)

    def test_duplicate_address_space_rejected(self):
        manager = make_manager()
        with pytest.raises(ValueError):
            manager.create_address_space(1)


class TestRwShared:
    def test_mark_rw_shared(self):
        manager = make_manager()
        host = manager.mark_rw_shared(1, 50)
        assert manager.page_type_of(host) is PageType.RW_SHARED
        assert manager.owner_of(host) is None


class TestContentSharing:
    def test_share_content_collapses_pages(self):
        manager = make_manager()
        manager.translate(1, 10)
        manager.translate(2, 10)
        before = manager.host.allocated_count
        shared = manager.share_content([(1, 10), (2, 10)])
        assert manager.page_type_of(shared) is PageType.RO_SHARED
        assert manager.sharers_of(shared) == {1, 2}
        # One page freed by deduplication.
        assert manager.host.allocated_count == before - 1
        assert manager.translate(1, 10)[0] == manager.translate(2, 10)[0]

    def test_share_content_requires_two(self):
        manager = make_manager()
        with pytest.raises(ValueError):
            manager.share_content([(1, 10)])

    def test_share_unmapped_pages_maps_them(self):
        manager = make_manager()
        shared = manager.share_content([(1, 11), (2, 11)])
        assert manager.page_type_of(shared) is PageType.RO_SHARED

    def test_iter_shared_pages(self):
        manager = make_manager()
        manager.share_content([(1, 10), (2, 10)])
        pages = list(manager.iter_shared_pages())
        assert len(pages) == 1
        _, sharers = pages[0]
        assert sharers == frozenset({1, 2})


class TestCopyOnWrite:
    def test_cow_gives_private_copy(self):
        manager = make_manager()
        shared = manager.share_content([(1, 10), (2, 10)])
        new_host = manager.copy_on_write(1, 10)
        assert new_host != shared
        assert manager.page_type_of(new_host) is PageType.VM_PRIVATE
        assert manager.owner_of(new_host) == 1
        # VM 2 still sees the shared page.
        assert manager.translate(2, 10)[0] == shared
        assert manager.sharers_of(shared) == {2}

    def test_cow_last_sharer_frees_page(self):
        manager = make_manager()
        shared = manager.share_content([(1, 10), (2, 10)])
        manager.copy_on_write(1, 10)
        before = manager.host.allocated_count
        manager.copy_on_write(2, 10)
        # Old shared page freed, new private page allocated: net zero.
        assert manager.host.allocated_count == before
        with pytest.raises(TranslationFault):
            manager.page_type_of(shared)

    def test_cow_on_private_page_rejected(self):
        manager = make_manager()
        manager.translate(1, 10)
        with pytest.raises(ValueError):
            manager.copy_on_write(1, 10)

    def test_cow_counts_faults(self):
        manager = make_manager()
        manager.share_content([(1, 10), (2, 10)])
        manager.copy_on_write(1, 10)
        assert manager.cow_faults == 1
