"""Tests for the hypervisor facade (placement, listeners, COW)."""

import pytest

from repro.hypervisor.hypervisor import Hypervisor, PlacementListener
from repro.mem.pagetype import PageType


class Recorder(PlacementListener):
    def __init__(self):
        self.placed = []
        self.displaced = []
        self.shared = []
        self.cows = []

    def on_vcpu_placed(self, vm_id, core):
        self.placed.append((vm_id, core))

    def on_vcpu_displaced(self, vm_id, core):
        self.displaced.append((vm_id, core))

    def on_page_shared(self, host_page):
        self.shared.append(host_page)

    def on_cow(self, vm_id, old, new):
        self.cows.append((vm_id, old, new))


def make_hypervisor():
    hyp = Hypervisor(num_cores=8, host_pages=256)
    recorder = Recorder()
    hyp.add_listener(recorder)
    return hyp, recorder


class TestVmLifecycle:
    def test_vm_ids_start_after_dom0(self):
        hyp, _ = make_hypervisor()
        vm = hyp.create_vm(4)
        assert vm.vm_id == 1
        assert hyp.create_vm(4).vm_id == 2

    def test_address_space_created(self):
        hyp, _ = make_hypervisor()
        vm = hyp.create_vm(2)
        host, page_type = hyp.translate(vm.vm_id, 5)
        assert page_type is PageType.VM_PRIVATE


class TestPlacement:
    def test_place_notifies_listener(self):
        hyp, rec = make_hypervisor()
        vm = hyp.create_vm(2)
        hyp.place_vcpu(vm.vcpus[0], 3)
        assert rec.placed == [(vm.vm_id, 3)]
        assert hyp.occupant_of(3) is vm.vcpus[0]

    def test_place_on_busy_core_rejected(self):
        hyp, _ = make_hypervisor()
        vm = hyp.create_vm(2)
        hyp.place_vcpu(vm.vcpus[0], 3)
        with pytest.raises(ValueError):
            hyp.place_vcpu(vm.vcpus[1], 3)

    def test_replace_moves_and_notifies(self):
        hyp, rec = make_hypervisor()
        vm = hyp.create_vm(1)
        hyp.place_vcpu(vm.vcpus[0], 0)
        hyp.place_vcpu(vm.vcpus[0], 5)
        assert rec.displaced == [(vm.vm_id, 0)]
        assert hyp.occupant_of(0) is None
        assert hyp.occupant_of(5) is vm.vcpus[0]

    def test_swap_exchanges_cores(self):
        hyp, rec = make_hypervisor()
        vm1, vm2 = hyp.create_vm(1), hyp.create_vm(1)
        hyp.place_vcpu(vm1.vcpus[0], 0)
        hyp.place_vcpu(vm2.vcpus[0], 4)
        hyp.swap_vcpus(vm1.vcpus[0], vm2.vcpus[0], cycle=99)
        assert vm1.vcpus[0].core == 4
        assert vm2.vcpus[0].core == 0
        assert len(hyp.relocations) == 4  # 2 placements + 2 swap records

    def test_swap_requires_running_vcpus(self):
        hyp, _ = make_hypervisor()
        vm1, vm2 = hyp.create_vm(1), hyp.create_vm(1)
        hyp.place_vcpu(vm1.vcpus[0], 0)
        with pytest.raises(ValueError):
            hyp.swap_vcpus(vm1.vcpus[0], vm2.vcpus[0])

    def test_relocation_log_records_old_core(self):
        hyp, _ = make_hypervisor()
        vm = hyp.create_vm(1)
        hyp.place_vcpu(vm.vcpus[0], 0, cycle=0)
        hyp.place_vcpu(vm.vcpus[0], 1, cycle=10)
        assert hyp.relocations[-1].old_core == 0
        assert hyp.relocations[-1].new_core == 1
        assert hyp.relocations[-1].cycle == 10


class TestMemoryEvents:
    def test_share_notifies_listener(self):
        hyp, rec = make_hypervisor()
        vm1, vm2 = hyp.create_vm(1), hyp.create_vm(1)
        hyp.content.register_content(vm1.vm_id, 7, label=1)
        hyp.content.register_content(vm2.vm_id, 7, label=1)
        shared = hyp.share_identical_pages()
        assert rec.shared == shared
        assert len(shared) == 1

    def test_write_to_shared_page_cows(self):
        hyp, rec = make_hypervisor()
        vm1, vm2 = hyp.create_vm(1), hyp.create_vm(1)
        hyp.content.register_content(vm1.vm_id, 7, label=1)
        hyp.content.register_content(vm2.vm_id, 7, label=1)
        hyp.share_identical_pages()
        host, page_type = hyp.write_to_page(vm1.vm_id, 7)
        assert page_type is PageType.VM_PRIVATE
        assert len(rec.cows) == 1

    def test_write_to_private_page_no_cow(self):
        hyp, rec = make_hypervisor()
        vm = hyp.create_vm(1)
        host, page_type = hyp.write_to_page(vm.vm_id, 9)
        assert page_type is PageType.VM_PRIVATE
        assert rec.cows == []
