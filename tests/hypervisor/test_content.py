"""Tests for the content-based page sharing service."""

from repro.hypervisor.content import ContentSharingService
from repro.hypervisor.memory import MemoryManager
from repro.mem.pagetype import PageType
from repro.mem.physical import HostMemory


def make_service(num_vms=3):
    manager = MemoryManager(HostMemory(256))
    for vm in range(1, num_vms + 1):
        manager.create_address_space(vm)
    return ContentSharingService(manager), manager


class TestScan:
    def test_merges_identical_across_vms(self):
        service, manager = make_service()
        for vm in (1, 2, 3):
            service.register_content(vm, 10, label=777)
        shared = service.scan()
        assert len(shared) == 1
        assert manager.sharers_of(shared[0]) == {1, 2, 3}
        assert service.pages_merged == 2

    def test_single_vm_duplicates_not_merged(self):
        service, manager = make_service()
        service.register_content(1, 10, label=5)
        service.register_content(1, 11, label=5)
        assert service.scan() == []

    def test_different_labels_not_merged(self):
        service, _ = make_service()
        service.register_content(1, 10, label=1)
        service.register_content(2, 10, label=2)
        assert service.scan() == []

    def test_multiple_groups(self):
        service, _ = make_service()
        service.register_many(1, [(10, 100), (11, 101)])
        service.register_many(2, [(20, 100), (21, 101)])
        assert len(service.scan()) == 2

    def test_scan_deterministic_order(self):
        service_a, _ = make_service()
        service_b, _ = make_service()
        for service in (service_a, service_b):
            service.register_content(1, 10, label=2)
            service.register_content(2, 10, label=2)
            service.register_content(1, 11, label=1)
            service.register_content(2, 11, label=1)
        assert service_a.scan() == service_b.scan()


class TestWriteFault:
    def test_cow_invalidates_label(self):
        service, manager = make_service()
        service.register_content(1, 10, label=9)
        service.register_content(2, 10, label=9)
        service.scan()
        new_host = service.handle_write_fault(1, 10)
        assert manager.page_type_of(new_host) is PageType.VM_PRIVATE
        # The writer's page diverged: a rescan must not re-merge it.
        assert service.scan() == []
