"""Tests for the RegionScout baseline filter."""

import pytest

from repro.baselines.regionscout import RegionScoutFilter, RegionTracker
from repro.cache.line import CacheLine
from repro.mem.pagetype import PageType


class TestRegionTracker:
    def test_counts_regions(self):
        tracker = RegionTracker(region_bits=6, crh_buckets=64)
        tracker.on_insert(CacheLine(0, 1))
        tracker.on_insert(CacheLine(1, 1))  # same region
        tracker.on_insert(CacheLine(64, 1))  # next region
        assert tracker.caches_region(0)
        assert tracker.caches_region(1)
        assert not tracker.caches_region(2)

    def test_crh_no_false_negatives(self):
        tracker = RegionTracker(region_bits=6, crh_buckets=4)
        for block in (0, 64, 128, 192, 256):
            tracker.on_insert(CacheLine(block, 1))
        for region in range(5):
            assert tracker.crh_possibly_present(region)

    def test_crh_clears_on_eviction(self):
        tracker = RegionTracker(region_bits=6, crh_buckets=64)
        line = CacheLine(0, 1)
        tracker.on_insert(line)
        tracker.on_evict(line)
        assert not tracker.caches_region(0)
        assert not tracker.crh_possibly_present(0)

    def test_underflow_raises(self):
        tracker = RegionTracker(region_bits=6, crh_buckets=64)
        with pytest.raises(RuntimeError):
            tracker.on_evict(CacheLine(0, 1))

    def test_collisions_cause_false_positives(self):
        tracker = RegionTracker(region_bits=6, crh_buckets=1)
        tracker.on_insert(CacheLine(0, 1))
        # Single bucket: every region now appears possibly-present.
        assert tracker.crh_possibly_present(999)
        assert not tracker.caches_region(999)


class TestRegionScoutFilter:
    def make_filter(self):
        return RegionScoutFilter(4, region_blocks=64, crh_buckets=256)

    def test_rejects_bad_region_size(self):
        with pytest.raises(ValueError):
            RegionScoutFilter(4, region_blocks=48)

    def test_filters_cores_without_region(self):
        f = self.make_filter()
        f.trackers[1].on_insert(CacheLine(5, 1))  # core 1 caches region 0
        plan = f.plan(0, 1, PageType.VM_PRIVATE, block=7)
        assert plan.attempts[0] == frozenset({0, 1})
        assert f.crh_filtered_cores == 2  # cores 2 and 3 skipped

    def test_nsrt_hit_goes_memory_direct(self):
        f = self.make_filter()
        f.observe_outcome(0, 7)  # nobody else caches region 0
        plan = f.plan(0, 1, PageType.VM_PRIVATE, block=8)
        assert plan.attempts[0] == frozenset({0})
        assert f.nsrt_hits == 1

    def test_nsrt_invalidated_when_region_becomes_shared(self):
        f = self.make_filter()
        f.observe_outcome(0, 7)
        f.trackers[2].on_insert(CacheLine(9, 1))  # core 2 now caches region 0
        plan = f.plan(0, 1, PageType.VM_PRIVATE, block=8)
        assert 2 in plan.attempts[0]
        assert f.nsrt_hits == 0

    def test_nsrt_not_learned_for_shared_regions(self):
        f = self.make_filter()
        f.trackers[3].on_insert(CacheLine(2, 1))
        f.observe_outcome(0, 7)
        plan = f.plan(0, 1, PageType.VM_PRIVATE, block=8)
        assert plan.attempts[0] == frozenset({0, 3})

    def test_nsrt_capacity_bounded(self):
        f = RegionScoutFilter(4, nsrt_entries=2)
        for region in range(5):
            f.observe_outcome(0, region * 64)
        assert len(f._nsrt[0]) == 2

    def test_no_block_falls_back_to_broadcast(self):
        f = self.make_filter()
        plan = f.plan(0, 1, PageType.VM_PRIVATE)
        assert plan.attempts[0] == frozenset(range(4))


class TestIntegration:
    def test_regionscout_runs_in_full_system(self):
        from repro.sim import SimConfig, build_system, run_simulation
        from repro.workloads import get_profile

        config = SimConfig(
            filter_kind="regionscout",
            accesses_per_vcpu=1500,
            warmup_accesses_per_vcpu=1000,
        )
        system = run_simulation(build_system(config, get_profile("fft")))
        broadcast_snoops = 16 * system.stats.total_transactions
        # Region filtering removes a solid share of snoops...
        assert system.stats.total_snoops < 0.7 * broadcast_snoops
        # ...without any protocol violation (would have raised).
        assert system.stats.total_transactions > 0

    def test_regionscout_observer_attached(self):
        from repro.sim import SimConfig, build_system

        config = SimConfig(filter_kind="regionscout", accesses_per_vcpu=10)
        system = build_system(config, __import__("repro.workloads", fromlist=["get_profile"]).get_profile("fft"))
        for core, hierarchy in system.caches.items():
            assert hierarchy.l2.observer is system.snoop_filter.trackers[core]
