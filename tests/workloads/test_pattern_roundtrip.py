"""Trace round-trip: record a pattern, replay it, get identical stats.

Every pattern's access stream must survive the trace-file layer: record
the live :class:`PatternWorkload` with ``record_workload``, replay it
through :class:`TraceReplayWorkload`, and the simulation statistics are
bit-identical to the live generator's — on both kernels, including a
save/load pass through the on-disk text format.
"""

import json
from dataclasses import replace

import pytest

from repro.sim.config import SimConfig
from repro.sim.kernel import engine_for
from repro.sim.system import build_system
from repro.workloads.pattern_workload import PatternWorkload
from repro.workloads.profiles import PROFILES
from repro.workloads.tracefile import (
    TraceReplayWorkload,
    load_trace,
    record_workload,
    save_trace,
)

from .test_pattern_differential import ALL_SPECS, _ids

BASE = SimConfig(
    num_cores=4,
    mesh_width=2,
    mesh_height=2,
    num_vms=2,
    vcpus_per_vm=2,
    accesses_per_vcpu=400,
    warmup_accesses_per_vcpu=100,
    content_sharing_enabled=True,
    hypervisor_activity_enabled=True,
)


def _fresh_twin(workload: PatternWorkload, config: SimConfig) -> PatternWorkload:
    """An unconsumed copy of a built system's pattern workload."""
    return PatternWorkload(
        workload.service,
        workload.vm_id,
        workload.num_vcpus,
        seed=config.seed,
        include_hypervisor=config.hypervisor_activity_enabled,
        working_set_scale=config.working_set_scale,
    )


def _replay_system(config: SimConfig, through_disk=None):
    """A built system with every workload swapped for its recording.

    ``loop=False`` makes over-consumption loud: if a kernel pulled even
    one access more than the live run, replay raises StopIteration
    instead of silently wrapping.
    """
    system = build_system(config, PROFILES["fft"])
    per_vcpu = config.warmup_accesses_per_vcpu + config.accesses_per_vcpu
    for vm_id, workload in list(system.workloads.items()):
        source = _fresh_twin(workload, config)
        accesses = record_workload(source, per_vcpu)
        if through_disk is not None:
            path = through_disk / f"vm{vm_id}.trace"
            save_trace(path, accesses)
            accesses = load_trace(path)
        system.workloads[vm_id] = TraceReplayWorkload(
            vm_id,
            accesses,
            workload.num_vcpus,
            loop=False,
            content_page_labels=list(source.content_pages()),
        )
    return system


def run_stats(system) -> str:
    engine_for(system).run()
    return json.dumps(system.stats.to_dict(), sort_keys=True)


class TestRoundTrip:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=_ids)
    def test_replay_matches_live_on_both_kernels(self, spec):
        config = replace(BASE, pattern=spec)
        live = run_stats(build_system(config, PROFILES["fft"]))
        for kernel in ("reference", "batched"):
            replayed = run_stats(_replay_system(replace(config, kernel=kernel)))
            assert replayed == live, kernel

    def test_suite_replay_matches_live(self):
        config = replace(BASE, suite="cloud-mix")
        live = run_stats(build_system(config, PROFILES["fft"]))
        replayed = run_stats(_replay_system(replace(config, kernel="batched")))
        assert replayed == live

    def test_replay_survives_disk_format(self, tmp_path):
        config = replace(BASE, pattern="zipfian(alpha=1.2)")
        live = run_stats(build_system(config, PROFILES["fft"]))
        replayed = run_stats(
            _replay_system(replace(config, kernel="batched"), through_disk=tmp_path)
        )
        assert replayed == live


class TestRecording:
    def test_record_workload_accepts_pattern_workload(self):
        config = replace(BASE, pattern="hotspot")
        system = build_system(config, PROFILES["fft"])
        workload = system.workloads[1]
        accesses = record_workload(_fresh_twin(workload, config), 25)
        assert len(accesses) == 25 * workload.num_vcpus
        assert {a.vm_id for a in accesses} == {workload.vm_id}
        assert {a.vcpu_index for a in accesses} == set(range(workload.num_vcpus))

    def test_recording_is_deterministic(self):
        config = replace(BASE, pattern="bursty(mean_burst=8.0)")
        system = build_system(config, PROFILES["fft"])
        workload = system.workloads[1]
        first = record_workload(_fresh_twin(workload, config), 50)
        second = record_workload(_fresh_twin(workload, config), 50)
        assert first == second

    def test_disk_format_preserves_every_field(self, tmp_path):
        config = replace(BASE, suite="phase-shift")
        system = build_system(config, PROFILES["fft"])
        workload = system.workloads[1]
        accesses = record_workload(_fresh_twin(workload, config), 40)
        path = tmp_path / "pattern.trace"
        save_trace(path, accesses)
        assert load_trace(path) == accesses
