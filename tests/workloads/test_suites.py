"""Service profiles, scenario suites, and their config/CLI/snapshot
wiring: registry integrity, validation, SimConfig selection, store
identity (task keys and warm-up fingerprints), the warm-snapshot
delegation layer, and the repro-sim surface."""

import json
from dataclasses import replace

import pytest

from repro.cli import build_parser, main
from repro.sim import SimTask, run_simulation_task
from repro.sim.config import SimConfig
from repro.sim.runner import config_to_dict, task_key, warmup_fingerprint
from repro.sim.system import build_system
from repro.workloads.generator import VmWorkload
from repro.workloads.pattern_workload import PatternWorkload, workloads_for_config
from repro.workloads.profiles import PROFILES
from repro.workloads.service import (
    SERVICES,
    ServiceProfile,
    generic_service,
    get_service,
)
from repro.workloads.suites import (
    SUITE_NAMES,
    SUITES,
    get_suite,
    resolve_entry,
    resolve_services,
    suite_services,
)
from repro.workloads.trace import Initiator

BASE = SimConfig(
    num_cores=4,
    mesh_width=2,
    mesh_height=2,
    num_vms=2,
    vcpus_per_vm=2,
    accesses_per_vcpu=400,
    warmup_accesses_per_vcpu=100,
    content_sharing_enabled=True,
    hypervisor_activity_enabled=True,
)


class TestServiceRegistry:
    def test_catalogue_names_match_keys(self):
        for name, profile in SERVICES.items():
            assert profile.name == name

    def test_expected_services_present(self):
        assert {"web", "datalake", "backup", "kvcache"} <= set(SERVICES)

    def test_get_service_unknown(self):
        with pytest.raises(KeyError, match="unknown service"):
            get_service("nosuchservice")

    def test_generic_service_applies_pattern_everywhere(self):
        profile = generic_service("zipfian(alpha=1.4)")
        assert profile.name == "mixed[zipfian(alpha=1.4)]"
        for pool in ("private", "shared", "content"):
            assert profile.pattern_for(pool).spec() == "zipfian(alpha=1.4)"

    def test_with_patterns_preserves_mix(self):
        web = get_service("web")
        scanned = web.with_patterns("sequential")
        assert scanned.private_fraction == web.private_fraction
        assert scanned.write_fraction == web.write_fraction
        assert scanned.private_pattern == "sequential"
        assert scanned.content_pattern == "sequential"


class TestServiceValidation:
    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            ServiceProfile(name="x", description="", private_fraction=-0.1)

    def test_zero_guest_weight_rejected(self):
        with pytest.raises(ValueError, match="positive access weight"):
            ServiceProfile(
                name="x",
                description="",
                private_fraction=0.0,
                shared_fraction=0.0,
                content_fraction=0.0,
            )

    def test_write_fraction_bounds(self):
        with pytest.raises(ValueError, match="write_fraction"):
            ServiceProfile(name="x", description="", write_fraction=1.5)

    def test_pages_bounds(self):
        with pytest.raises(ValueError, match="private_pages"):
            ServiceProfile(name="x", description="", private_pages=0)

    def test_bad_pattern_spec_fails_at_construction(self):
        with pytest.raises(ValueError):
            ServiceProfile(name="x", description="", private_pattern="nope")


class TestSuiteRegistry:
    def test_suite_names_sorted_and_match_keys(self):
        assert SUITE_NAMES == tuple(sorted(SUITES))
        for name, suite in SUITES.items():
            assert suite.name == name

    def test_every_entry_resolves(self):
        for suite in SUITES.values():
            for entry in suite.vm_services:
                assert isinstance(resolve_entry(entry), ServiceProfile)

    def test_get_suite_unknown(self):
        with pytest.raises(KeyError, match="unknown suite"):
            get_suite("nosuchsuite")

    def test_entry_pattern_override(self):
        profile = resolve_entry("web:uniform")
        assert profile.private_pattern == "uniform"
        assert profile.write_fraction == get_service("web").write_fraction

    def test_suite_services_cycle(self):
        services = suite_services("backup-window", 5)
        assert [s.name for s in services] == [
            "backup", "web", "backup", "web", "backup",
        ]

    def test_resolve_services_pattern_wins(self):
        services = resolve_services("uniform", None, 3)
        assert len(services) == 3
        assert all(s.name == "mixed[uniform]" for s in services)

    def test_resolve_services_requires_selection(self):
        with pytest.raises(ValueError):
            resolve_services(None, None, 2)


class TestConfigWiring:
    def test_pattern_field_validated(self):
        with pytest.raises(ValueError):
            replace(BASE, pattern="nosuchpattern")

    def test_suite_field_validated(self):
        with pytest.raises(ValueError, match="unknown suite"):
            replace(BASE, suite="nosuchsuite")

    def test_pattern_and_suite_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            replace(BASE, pattern="uniform", suite="web-farm")

    def test_defaults_are_none(self):
        assert BASE.pattern is None and BASE.suite is None

    def test_config_to_dict_carries_selection(self):
        out = config_to_dict(replace(BASE, suite="cloud-mix"))
        assert out["suite"] == "cloud-mix"
        assert out["pattern"] is None

    def test_task_key_distinguishes_patterns(self):
        keys = {
            task_key(SimTask(replace(BASE, pattern=spec), "fft"))
            for spec in ("uniform", "zipfian(alpha=1.1)", "zipfian(alpha=1.2)")
        }
        assert len(keys) == 3

    def test_warmup_fingerprint_not_inert(self):
        # A pattern/suite selection changes the warm state, so it must
        # change the warm-up fingerprint (unlike, say, the kernel).
        plain = warmup_fingerprint(SimTask(BASE, "fft"))[0]
        suite = warmup_fingerprint(SimTask(replace(BASE, suite="web-farm"), "fft"))[0]
        pattern = warmup_fingerprint(
            SimTask(replace(BASE, pattern="uniform"), "fft")
        )[0]
        assert len({plain, suite, pattern}) == 3

    def test_kernel_still_inert_with_suite(self):
        a = warmup_fingerprint(
            SimTask(replace(BASE, suite="web-farm", kernel="reference"), "fft")
        )[0]
        b = warmup_fingerprint(
            SimTask(replace(BASE, suite="web-farm", kernel="batched"), "fft")
        )[0]
        assert a == b

    def test_build_system_selects_pattern_workloads(self):
        system = build_system(replace(BASE, suite="cloud-mix"), PROFILES["fft"])
        assert all(
            isinstance(w, PatternWorkload) for w in system.workloads.values()
        )

    def test_build_system_default_still_vmworkload(self):
        system = build_system(BASE, PROFILES["fft"])
        assert all(isinstance(w, VmWorkload) for w in system.workloads.values())


class TestPatternWorkload:
    def test_validation(self):
        web = get_service("web")
        with pytest.raises(ValueError, match="working_set_scale"):
            PatternWorkload(web, 1, 2, working_set_scale=0.0)
        with pytest.raises(ValueError, match="vCPU"):
            PatternWorkload(web, 1, 0)

    def test_workloads_for_config_cycles_suite(self):
        config = replace(BASE, suite="backup-window", num_vms=2)
        system = build_system(config, PROFILES["fft"])
        vms = sorted(system.workloads)
        assert system.workloads[vms[0]].service.name == "backup"
        assert system.workloads[vms[1]].service.name == "web"

    def test_workloads_for_config_keys_match_vms(self):
        config = replace(BASE, pattern="uniform")
        system = build_system(config, PROFILES["fft"])

        class _Vm:
            def __init__(self, vm_id):
                self.vm_id = vm_id

        built = workloads_for_config(config, [_Vm(7), _Vm(9)])
        assert sorted(built) == [7, 9]
        assert all(isinstance(w, PatternWorkload) for w in built.values())
        assert set(system.workloads) == {w.vm_id for w in system.workloads.values()}

    def test_content_labels_equal_pages(self):
        workload = PatternWorkload(get_service("web"), 1, 1)
        for page, label in workload.content_pages():
            assert page == label

    def test_hypervisor_excluded_when_disabled(self):
        workload = PatternWorkload(
            get_service("web"), 1, 1, include_hypervisor=False
        )
        initiators = {
            workload.next_access(0).initiator for _ in range(2_000)
        }
        assert initiators == {Initiator.GUEST}

    def test_hypervisor_present_when_enabled(self):
        workload = PatternWorkload(get_service("web"), 1, 1, seed=3)
        initiators = {
            workload.next_access(0).initiator for _ in range(5_000)
        }
        assert Initiator.HYPERVISOR in initiators
        assert Initiator.DOM0 in initiators

    def test_streams_deterministic_per_seed(self):
        a = PatternWorkload(get_service("kvcache"), 2, 2, seed=5)
        b = PatternWorkload(get_service("kvcache"), 2, 2, seed=5)
        assert [a.next_access(1) for _ in range(200)] == [
            b.next_access(1) for _ in range(200)
        ]
        c = PatternWorkload(get_service("kvcache"), 2, 2, seed=6)
        assert [a.next_access(0) for _ in range(200)] != [
            c.next_access(0) for _ in range(200)
        ]

    def test_stream_chunk_equals_next_access(self):
        live = PatternWorkload(get_service("datalake"), 1, 2, seed=4)
        chunked = PatternWorkload(get_service("datalake"), 1, 2, seed=4)
        singles = [live.next_access(0) for _ in range(100)]
        bulk = chunked.stream_chunk(0, 100)
        assert [
            (a.initiator, a.guest_page, a.block_index, a.is_write)
            for a in singles
        ] == bulk

    def test_vcpus_share_no_state(self):
        # Draining vCPU 0 must not perturb vCPU 1's stream — the
        # property stream_chunk_independent declares.
        alone = PatternWorkload(get_service("web"), 1, 2, seed=8)
        interleaved = PatternWorkload(get_service("web"), 1, 2, seed=8)
        expected = [alone.next_access(1) for _ in range(100)]
        interleaved.stream_chunk(0, 5_000)
        assert [interleaved.next_access(1) for _ in range(100)] == expected


class TestSnapshotDelegation:
    def _drained(self, workload, per_vcpu):
        for vcpu in range(workload.num_vcpus):
            for _ in range(per_vcpu):
                workload.next_access(vcpu)
        return workload

    def test_pattern_workload_snapshot_resumes_exactly(self):
        config = replace(BASE, suite="phase-shift")
        build = lambda: PatternWorkload(  # noqa: E731
            suite_services("phase-shift", 1)[0], 1, 2, seed=BASE.seed
        )
        warmed = self._drained(build(), 300)
        captured = warmed.snapshot_state()
        expected = [warmed.next_access(v) for v in (0, 1, 0, 1) for _ in range(40)]

        restored = build()
        restored.restore_state(captured)
        assert [
            restored.next_access(v) for v in (0, 1, 0, 1) for _ in range(40)
        ] == expected
        assert config.suite == "phase-shift"

    def test_pattern_snapshot_rejects_foreign_kind(self):
        workload = PatternWorkload(get_service("web"), 1, 1)
        with pytest.raises(ValueError, match="pattern-workload"):
            workload.restore_state({"kind": "trace"})

    def test_vmworkload_snapshot_resumes_exactly(self):
        build = lambda: VmWorkload(PROFILES["fft"], 1, 2, seed=42)  # noqa: E731
        warmed = self._drained(build(), 300)
        captured = warmed.snapshot_state()
        assert set(captured) == {
            "rng", "private", "shared", "content", "hyp", "dom0",
        }
        expected = [warmed.next_access(v) for v in (0, 1) for _ in range(50)]

        restored = build()
        restored.restore_state(captured)
        assert [
            restored.next_access(v) for v in (0, 1) for _ in range(50)
        ] == expected

    def test_system_snapshot_restore_round_trips(self):
        from repro.sim.kernel import engine_for

        config = replace(BASE, suite="cloud-mix")
        system = build_system(config, PROFILES["fft"])
        engine_for(system).run()
        clocks = [0] * config.num_cores
        captured = system.snapshot(clocks)
        fresh = build_system(config, PROFILES["fft"])
        restored_clocks = fresh.restore(captured)
        assert restored_clocks == clocks
        assert fresh.snapshot(restored_clocks) == captured
        for vm_id, workload in system.workloads.items():
            twin = fresh.workloads[vm_id]
            assert [workload.next_access(0) for _ in range(50)] == [
                twin.next_access(0) for _ in range(50)
            ]

    def test_warm_snapshot_reuse_is_bit_identical(self, monkeypatch, tmp_path):
        # The store warms "cloud-mix" once (migration period is
        # warm-up-inert) and forks the second cell from the snapshot;
        # the forked run must equal a cold run exactly.
        warm_store = tmp_path / "warm"
        cold_store = tmp_path / "cold"
        config = replace(BASE, suite="cloud-mix")
        sweep = replace(config, migration_period_ms=0.4)

        monkeypatch.setenv("REPRO_STORE", str(warm_store))
        run_simulation_task(SimTask(config, "fft"))  # populates warm state
        forked = run_simulation_task(SimTask(sweep, "fft"))

        monkeypatch.setenv("REPRO_STORE", str(cold_store))
        cold = run_simulation_task(SimTask(sweep, "fft"))
        assert forked.to_dict() == cold.to_dict()


class TestCli:
    def test_run_accepts_pattern(self, capsys):
        assert main([
            "run", "--pattern", "zipfian(alpha=1.2)",
            "--accesses", "300", "--warmup", "100",
        ]) == 0
        assert "snoops vs broadcast" in capsys.readouterr().out

    def test_run_accepts_suite(self, capsys):
        assert main([
            "run", "--suite", "web-farm",
            "--accesses", "300", "--warmup", "100",
        ]) == 0
        assert "snoops vs broadcast" in capsys.readouterr().out

    def test_parser_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.pattern is None and args.suite is None

    def test_parser_rejects_unknown_suite(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--suite", "nosuchsuite"])

    def test_list_patterns(self, capsys):
        assert main(["list-patterns"]) == 0
        out = capsys.readouterr().out
        assert "dynamicmix" in out
        assert "datalake" in out
        for suite in SUITE_NAMES:
            assert suite in out

    def test_record_trace_pattern(self, capsys, tmp_path):
        out_path = tmp_path / "pattern.trace"
        assert main([
            "record-trace", "--pattern", "hotspot",
            "--accesses", "20", "--vcpus", "2", "--out", str(out_path),
        ]) == 0
        from repro.workloads.tracefile import load_trace

        assert len(load_trace(out_path)) == 40

    def test_patterns_experiment_registered(self):
        import importlib

        from repro.cli import EXPERIMENTS

        module_name, _ = EXPERIMENTS["patterns"]
        module = importlib.import_module(module_name)
        assert hasattr(module, "main")

    def test_pattern_study_smoke(self, monkeypatch, capsys):
        from repro.experiments import pattern_study

        monkeypatch.setenv("PATTERN_SMOKE", "1")
        monkeypatch.setenv("REPRO_STORE", "off")
        results = pattern_study.run(
            suites=["web-farm"], accesses=300, warmup=100
        )
        assert set(results) == {"web-farm"}
        cell = results["web-farm"]["vsnoop-base"]
        assert 0.0 <= cell["miss_rate"] <= 1.0
        assert cell["snoops_norm_pct"] <= 100.0
        table = pattern_study.format_patterns(results)
        assert "web-farm" in table

    def test_pattern_study_results_serializable(self, monkeypatch):
        from repro.experiments import pattern_study

        monkeypatch.setenv("PATTERN_SMOKE", "1")
        monkeypatch.setenv("REPRO_STORE", "off")
        results = pattern_study.run(suites=["web-farm"], accesses=200, warmup=50)
        json.dumps(results)
