"""Tests for trace records."""

from repro.workloads.trace import Initiator, MemoryAccess


class TestMemoryAccess:
    def test_fields(self):
        access = MemoryAccess(1, 2, Initiator.GUEST, 100, 5, True)
        assert access.vm_id == 1
        assert access.vcpu_index == 2
        assert access.initiator is Initiator.GUEST
        assert access.guest_page == 100
        assert access.block_index == 5
        assert access.is_write

    def test_is_tuple(self):
        # NamedTuple: cheap, hashable, comparable — engines generate millions.
        access = MemoryAccess(1, 2, Initiator.DOM0, 100, 5, False)
        assert isinstance(access, tuple)
        assert access == MemoryAccess(1, 2, Initiator.DOM0, 100, 5, False)

    def test_three_initiators(self):
        assert {i.value for i in Initiator} == {"guest", "dom0", "hypervisor"}
