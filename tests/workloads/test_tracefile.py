"""Tests for trace persistence and replay."""

import pytest

from repro.workloads.generator import VmWorkload
from repro.workloads.profiles import get_profile
from repro.workloads.trace import Initiator, MemoryAccess
from repro.workloads.tracefile import (
    TraceFormatError,
    TraceReplayWorkload,
    format_access,
    load_trace,
    parse_access,
    record_workload,
    save_trace,
)


def sample_accesses():
    return [
        MemoryAccess(1, 0, Initiator.GUEST, 100, 5, False),
        MemoryAccess(1, 1, Initiator.DOM0, 200, 63, True),
        MemoryAccess(1, 0, Initiator.HYPERVISOR, 300, 0, False),
    ]


class TestFormat:
    def test_roundtrip_line(self):
        for access in sample_accesses():
            assert parse_access(format_access(access)) == access

    def test_bad_field_count(self):
        with pytest.raises(TraceFormatError):
            parse_access("1 2 g 3")

    def test_bad_initiator(self):
        with pytest.raises(TraceFormatError):
            parse_access("1 0 x 100 5 0")

    def test_bad_number(self):
        with pytest.raises(TraceFormatError):
            parse_access("1 0 g abc 5 0")

    def test_block_range_checked(self):
        with pytest.raises(TraceFormatError):
            parse_access("1 0 g 100 64 0")


class TestFileRoundtrip:
    def test_save_load(self, tmp_path):
        path = tmp_path / "trace.txt"
        accesses = sample_accesses()
        assert save_trace(path, accesses) == 3
        assert load_trace(path) == accesses

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\n1 0 g 100 5 0\n")
        assert len(load_trace(path)) == 1

    def test_record_workload_roundtrip(self, tmp_path):
        workload = VmWorkload(get_profile("fft"), 1, 4, seed=3)
        captured = record_workload(workload, accesses_per_vcpu=50)
        assert len(captured) == 200
        path = tmp_path / "fft.trace"
        save_trace(path, captured)
        assert load_trace(path) == captured


class TestReplay:
    def test_replay_preserves_per_vcpu_order(self):
        accesses = sample_accesses()
        replay = TraceReplayWorkload(1, accesses, num_vcpus=2)
        assert replay.next_access(0) == accesses[0]
        assert replay.next_access(0) == accesses[2]
        assert replay.next_access(1) == accesses[1]

    def test_replay_loops(self):
        accesses = sample_accesses()
        replay = TraceReplayWorkload(1, accesses, num_vcpus=2, loop=True)
        first = replay.next_access(1)
        second = replay.next_access(1)
        assert first == second  # single-entry stream wrapped

    def test_replay_no_loop_exhausts(self):
        replay = TraceReplayWorkload(1, sample_accesses(), num_vcpus=2, loop=False)
        replay.next_access(1)
        with pytest.raises(StopIteration):
            replay.next_access(1)

    def test_filters_other_vms(self):
        accesses = sample_accesses() + [
            MemoryAccess(2, 0, Initiator.GUEST, 1, 1, False)
        ]
        replay = TraceReplayWorkload(1, accesses, num_vcpus=2)
        assert all(
            a.vm_id == 1
            for stream in replay._streams.values()
            for a in stream
        )

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceReplayWorkload(9, sample_accesses(), num_vcpus=2)

    def test_out_of_range_vcpu_rejected(self):
        with pytest.raises(ValueError):
            TraceReplayWorkload(1, sample_accesses(), num_vcpus=1)

    def test_replay_drives_engine(self, tmp_path):
        """A recorded trace can replace the synthetic generator."""
        from repro.sim import SimConfig, SimulationEngine, build_system
        from repro.workloads import get_profile

        config = SimConfig(accesses_per_vcpu=300, warmup_accesses_per_vcpu=100)
        system = build_system(config, get_profile("fft"))
        recorded = {
            vm_id: record_workload(workload, 500)
            for vm_id, workload in system.workloads.items()
        }
        # Rebuild and swap in replays.
        system = build_system(config, get_profile("fft"))
        system.workloads = {
            vm_id: TraceReplayWorkload(vm_id, accesses, config.vcpus_per_vm)
            for vm_id, accesses in recorded.items()
        }
        SimulationEngine(system).run()
        assert system.stats.total_transactions > 0
