"""Differential tests: every pattern rides the fast-path machinery.

The pattern library's acceptance bar is the same as the batched
kernel's: for every registered pattern and every named suite, the
batched kernel's ``SimStats.to_dict()`` equals the reference engine's
byte-for-byte, the parallel runner equals the serial runner, and a
sanitized run raises no coherence violations. Hypothesis widens the
parameter space beyond the hand-picked specs.
"""

import json
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import SimTask, run_matrix
from repro.sim.config import SimConfig
from repro.sim.kernel import engine_for
from repro.sim.system import build_system
from repro.workloads.profiles import PROFILES
from repro.workloads.suites import SUITE_NAMES

BASE = SimConfig(
    num_cores=4,
    mesh_width=2,
    mesh_height=2,
    num_vms=2,
    vcpus_per_vm=2,
    accesses_per_vcpu=600,
    warmup_accesses_per_vcpu=200,
    content_sharing_enabled=True,
    hypervisor_activity_enabled=True,
)

# One spec per registered pattern kind, with non-default parameters so
# the parse path is exercised too.
ALL_SPECS = [
    "uniform",
    "zipfian(alpha=1.2)",
    "hotspot(hot_fraction=0.1,hot_probability=0.9)",
    "sequential(stride=2)",
    "bursty(mean_burst=8.0)",
    "dynamicmix(phases=zipfian(alpha=1.1)@400+sequential@300)",
]
_ids = [spec.partition("(")[0] for spec in ALL_SPECS]


def run_stats(config: SimConfig, app: str = "fft") -> str:
    system = build_system(config, PROFILES[app])
    engine_for(system).run()
    return json.dumps(system.stats.to_dict(), sort_keys=True)


def assert_identical(config: SimConfig, app: str = "fft") -> None:
    reference = run_stats(replace(config, kernel="reference"), app)
    batched = run_stats(replace(config, kernel="batched"), app)
    assert batched == reference


class TestPatternKernelDifferential:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=_ids)
    def test_pattern_matches_reference(self, spec):
        assert_identical(replace(BASE, pattern=spec))

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=_ids)
    def test_pattern_with_migrations_inside_chunks(self, spec):
        assert_identical(
            replace(BASE, pattern=spec, migration_period_ms=0.2)
        )

    def test_pattern_without_hypervisor(self):
        assert_identical(
            replace(
                BASE,
                pattern="zipfian(alpha=1.2)",
                hypervisor_activity_enabled=False,
            )
        )

    def test_pattern_single_vcpu(self):
        assert_identical(
            replace(BASE, pattern="bursty(mean_burst=4.0)", vcpus_per_vm=1)
        )

    def test_chunk_boundary_budget(self):
        # Budgets around the kernel's 256-access chunk refill.
        for budget in (255, 256, 257):
            assert_identical(
                replace(
                    BASE,
                    pattern="hotspot",
                    accesses_per_vcpu=budget,
                    warmup_accesses_per_vcpu=64,
                )
            )


class TestSuiteKernelDifferential:
    @pytest.mark.parametrize("suite", SUITE_NAMES)
    def test_suite_matches_reference(self, suite):
        assert_identical(replace(BASE, suite=suite))

    def test_suite_with_migrations(self):
        assert_identical(
            replace(BASE, suite="cloud-mix", migration_period_ms=0.2)
        )

    def test_suite_cycles_over_more_vms(self):
        # 4 VMs over a 2-entry suite exercises entry cycling; 8 cores
        # hold 4 x 2 vCPUs.
        assert_identical(
            replace(
                BASE,
                suite="backup-window",
                num_vms=4,
                num_cores=8,
                mesh_width=4,
                mesh_height=2,
            )
        )


class TestSanitizedSmoke:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=_ids)
    def test_pattern_sanitized(self, spec):
        config = replace(
            BASE,
            pattern=spec,
            sanitize=True,
            kernel="batched",
            accesses_per_vcpu=400,
            warmup_accesses_per_vcpu=100,
        )
        system = build_system(config, PROFILES["fft"])
        engine_for(system).run()
        assert system.sanitizer.violation_count == 0

    def test_suite_sanitized(self):
        config = replace(
            BASE,
            suite="cloud-mix",
            sanitize=True,
            kernel="batched",
            accesses_per_vcpu=400,
            warmup_accesses_per_vcpu=100,
        )
        system = build_system(config, PROFILES["fft"])
        engine_for(system).run()
        assert system.sanitizer.violation_count == 0


class TestSerialVsParallel:
    def test_runner_job_count_invariant(self, monkeypatch):
        # The result store would serve the second sweep from the first
        # one's cells; disable it so both sweeps actually execute.
        monkeypatch.setenv("REPRO_STORE", "off")
        small = replace(BASE, accesses_per_vcpu=400, warmup_accesses_per_vcpu=100)
        tasks = [
            SimTask(replace(small, pattern=spec), "fft")
            for spec in ALL_SPECS
        ] + [SimTask(replace(small, suite="cloud-mix"), "fft")]
        serial = run_matrix(tasks, jobs=1)
        parallel = run_matrix(tasks, jobs=2)
        assert [s.to_dict() for s in serial] == [s.to_dict() for s in parallel]


# Hypothesis: random parameterisations beyond the hand-picked specs.
# Strategies build pattern objects (their validators bound the space)
# and feed the canonical spec() through the full config -> parse ->
# simulate path.

_alpha = st.floats(min_value=0.2, max_value=3.0, allow_nan=False)
_fraction = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)
_probability = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
_stride = st.integers(min_value=1, max_value=7)
_burst = st.floats(min_value=1.0, max_value=64.0, allow_nan=False)


def _pattern_specs():
    from repro.workloads.patterns import (
        BurstyPattern,
        DynamicMixPattern,
        HotspotPattern,
        SequentialPattern,
        UniformPattern,
        ZipfianPattern,
    )

    simple = st.one_of(
        st.just(UniformPattern()),
        st.builds(ZipfianPattern, alpha=_alpha),
        st.builds(HotspotPattern, hot_fraction=_fraction, hot_probability=_probability),
        st.builds(SequentialPattern, stride=_stride),
        st.builds(BurstyPattern, mean_burst=_burst),
    )
    mix = st.builds(
        lambda a, b, na, nb: DynamicMixPattern(segments=((a, na), (b, nb))),
        simple,
        simple,
        st.integers(min_value=50, max_value=400),
        st.integers(min_value=50, max_value=400),
    )
    return st.one_of(simple, mix).map(lambda p: p.spec())


class TestHypothesisPatterns:
    @given(spec=_pattern_specs())
    @settings(max_examples=8, deadline=None)
    def test_random_pattern_configs_match_reference(self, spec):
        assert_identical(
            replace(
                BASE,
                pattern=spec,
                accesses_per_vcpu=300,
                warmup_accesses_per_vcpu=100,
            )
        )

    @given(spec=_pattern_specs())
    @settings(max_examples=8, deadline=None)
    def test_spec_round_trips_through_config(self, spec):
        config = replace(BASE, pattern=spec)
        from repro.workloads.patterns import parse_pattern

        assert parse_pattern(config.pattern).spec() == spec
