"""Tests for the synthetic workload generator."""

from collections import Counter

import pytest

from repro.workloads.generator import (
    CONTENT_HOT_BASE,
    CONTENT_STREAM_BASE,
    PRIVATE_BASE,
    PRIVATE_VCPU_STRIDE,
    VmWorkload,
    solve_category_mix,
    solve_category_probabilities,
)
from repro.workloads.profiles import get_profile
from repro.workloads.trace import Initiator


class TestSolver:
    def test_probabilities_sum_to_one(self):
        for app in ("fft", "blackscholes", "oltp"):
            probabilities = solve_category_probabilities(get_profile(app))
            assert sum(probabilities) == pytest.approx(1.0)

    def test_stream_mass_equals_miss_rate(self):
        profile = get_profile("fft")
        p = solve_category_probabilities(profile)
        # content_stream + hyp + dom0 + shared_stream + private_stream +
        # ping-pong reserve == target miss rate.
        mix = solve_category_mix(profile)
        stream_mass = p[0] + p[2] + p[3] + p[4] + p[6]
        assert stream_mass <= profile.miss_rate + 1e-9
        assert stream_mass >= 0.5 * profile.miss_rate

    def test_excluding_hypervisor_folds_mass(self):
        profile = get_profile("oltp")
        with_hyp = solve_category_probabilities(profile, include_hypervisor=True)
        without = solve_category_probabilities(profile, include_hypervisor=False)
        assert without[2] == 0.0 and without[3] == 0.0
        assert sum(without) == pytest.approx(1.0)

    def test_shared_write_fraction_capped_for_low_miss_apps(self):
        mix = solve_category_mix(get_profile("blackscholes"))
        assert mix.shared_write_fraction < get_profile("blackscholes").shared_write_fraction


class TestStreams:
    def test_deterministic_for_seed(self):
        a = VmWorkload(get_profile("fft"), 1, 4, seed=5)
        b = VmWorkload(get_profile("fft"), 1, 4, seed=5)
        assert [a.next_access(0) for _ in range(50)] == [
            b.next_access(0) for _ in range(50)
        ]

    def test_different_vms_different_streams(self):
        a = VmWorkload(get_profile("fft"), 1, 4, seed=5)
        b = VmWorkload(get_profile("fft"), 2, 4, seed=5)
        assert [a.next_access(0) for _ in range(50)] != [
            b.next_access(0) for _ in range(50)
        ]

    def test_access_fields_valid(self):
        workload = VmWorkload(get_profile("specjbb"), 3, 4, seed=1)
        for _ in range(2000):
            access = workload.next_access(2)
            assert access.vm_id == 3
            assert access.vcpu_index == 2
            assert 0 <= access.block_index < 64
            assert access.guest_page >= 0

    def test_private_pages_are_per_vcpu(self):
        workload = VmWorkload(get_profile("fft"), 1, 4, seed=1)
        for vcpu in range(4):
            for access in workload.stream(vcpu, 500):
                if access.guest_page >= PRIVATE_BASE:
                    slot = (access.guest_page - PRIVATE_BASE) // PRIVATE_VCPU_STRIDE
                    assert slot == vcpu

    def test_content_access_fraction_statistical(self):
        profile = get_profile("blackscholes")
        workload = VmWorkload(profile, 1, 4, seed=2)
        total, content = 0, 0
        for vcpu in range(4):
            for access in workload.stream(vcpu, 3000):
                total += 1
                if CONTENT_HOT_BASE <= access.guest_page < PRIVATE_BASE // 2:
                    content += 1
        assert content / total == pytest.approx(
            profile.content_access_fraction, rel=0.1
        )

    def test_hypervisor_initiator_present_when_enabled(self):
        workload = VmWorkload(get_profile("oltp"), 1, 4, seed=2, include_hypervisor=True)
        initiators = Counter(a.initiator for a in workload.stream(0, 30000))
        assert initiators[Initiator.HYPERVISOR] > 0
        assert initiators[Initiator.DOM0] > 0

    def test_hypervisor_absent_when_disabled(self):
        workload = VmWorkload(get_profile("oltp"), 1, 4, seed=2, include_hypervisor=False)
        initiators = Counter(a.initiator for a in workload.stream(0, 20000))
        assert initiators[Initiator.HYPERVISOR] == 0
        assert initiators[Initiator.DOM0] == 0


class TestContentPages:
    def test_labels_identical_across_vms(self):
        a = VmWorkload(get_profile("fft"), 1, 4, seed=1)
        b = VmWorkload(get_profile("fft"), 2, 4, seed=1)
        assert list(a.content_pages()) == list(b.content_pages())

    def test_content_pages_cover_both_pools(self):
        workload = VmWorkload(get_profile("fft"), 1, 4, seed=1)
        pages = dict(workload.content_pages())
        hot = [p for p in pages if p < CONTENT_STREAM_BASE]
        stream = [p for p in pages if p >= CONTENT_STREAM_BASE]
        assert hot and stream

    def test_working_set_scale_shrinks_pools(self):
        full = VmWorkload(get_profile("fft"), 1, 4, seed=1)
        scaled = VmWorkload(get_profile("fft"), 1, 4, seed=1, working_set_scale=0.25)
        assert scaled.content_stream_pages < full.content_stream_pages

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            VmWorkload(get_profile("fft"), 1, 4, working_set_scale=0)


class TestCoverageSizing:
    def test_low_traffic_pools_shrink_to_stay_warm(self):
        profile = get_profile("cholesky")  # 1.45% content accesses
        workload = VmWorkload(profile, 1, 4, seed=1, coverage_accesses=6000)
        # Pool must be touched ~3x per core within the warm-up budget.
        assert workload.content_hot_blocks <= 6000 * 0.0145 / 3 + 16

    def test_paired_stream_phases(self):
        profile = get_profile("canneal")
        phases = [
            VmWorkload(profile, vm, 4, seed=1).content_stream_phase
            for vm in (1, 2, 3, 4)
        ]
        # Pair members are close; pairs are half a region apart.
        assert abs(phases[0] - phases[1]) < profile.content_stream_pages // 4
        assert abs(phases[0] - phases[2]) >= profile.content_stream_pages // 4
