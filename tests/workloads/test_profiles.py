"""Tests for the application profile catalogue."""

import pytest

from repro.workloads.profiles import (
    COHERENCE_APPS,
    CONTENT_APPS,
    FIG1_APPS,
    PARSEC_APPS,
    PROFILES,
    AppProfile,
    get_profile,
)


class TestCatalogue:
    def test_all_experiment_apps_present(self):
        for app in set(COHERENCE_APPS) | set(CONTENT_APPS) | set(FIG1_APPS):
            assert app in PROFILES

    def test_coherence_apps_match_paper(self):
        assert COHERENCE_APPS == [
            "cholesky", "fft", "lu", "ocean", "radix",
            "blackscholes", "canneal", "dedup", "ferret", "specjbb",
        ]

    def test_content_apps_exclude_dedup(self):
        assert "dedup" not in CONTENT_APPS
        assert len(CONTENT_APPS) == 9

    def test_thirteen_parsec_apps(self):
        assert len(PARSEC_APPS) == 13

    def test_fig1_adds_servers(self):
        assert FIG1_APPS[-2:] == ["oltp", "specweb"]

    def test_get_profile_error_message(self):
        with pytest.raises(KeyError, match="unknown application"):
            get_profile("doom")


class TestPaperTargets:
    """The calibrated targets must encode the paper's measurements."""

    def test_table5_targets(self):
        fft = get_profile("fft")
        assert fft.content_access_fraction == pytest.approx(0.0543)
        assert fft.content_miss_share == pytest.approx(0.3064)
        blackscholes = get_profile("blackscholes")
        assert blackscholes.content_access_fraction == pytest.approx(0.4616)
        canneal = get_profile("canneal")
        assert canneal.content_miss_share == pytest.approx(0.5149)

    def test_fig1_targets_under_20_percent(self):
        for app in FIG1_APPS:
            assert get_profile(app).hyp_dom0_miss_share < 0.20

    def test_fig1_io_apps_have_higher_shares(self):
        compute = get_profile("blackscholes").hyp_dom0_miss_share
        assert get_profile("oltp").hyp_dom0_miss_share > compute
        assert get_profile("specweb").hyp_dom0_miss_share > compute
        assert get_profile("dedup").hyp_dom0_miss_share > compute

    def test_table1_cpu_bound_apps_have_long_bursts(self):
        for app in ("blackscholes", "swaptions", "freqmine"):
            assert get_profile(app).run_burst_ms > 100
        for app in ("dedup", "vips"):
            assert get_profile(app).run_burst_ms < 5


class TestValidation:
    def test_rejects_out_of_range_fraction(self):
        with pytest.raises(ValueError):
            AppProfile(name="x", suite="parsec", miss_rate=1.5)

    def test_rejects_excess_miss_shares(self):
        with pytest.raises(ValueError):
            AppProfile(
                name="x", suite="parsec",
                content_miss_share=0.6, hyp_miss_share=0.3, dom0_miss_share=0.2,
            )

    def test_rejects_content_misses_exceeding_accesses(self):
        with pytest.raises(ValueError):
            AppProfile(
                name="x", suite="parsec",
                miss_rate=0.5, content_access_fraction=0.01,
                content_miss_share=0.9,
            )
