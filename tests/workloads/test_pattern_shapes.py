"""Statistical shape tests for the pattern samplers.

Each test asserts the *distributional signature* a pattern promises —
Zipf's rank-frequency slope, hotspot concentration, scan monotonicity,
geometric burst run lengths, exact DynamicMix phase boundaries —
directly from generated offset streams with fixed seeds. None of these
touch the simulator: the differential suite proves the simulator
consumes the streams faithfully; this file proves the streams are what
the pattern names claim.
"""

import math
import random
from collections import Counter

import pytest

from repro.workloads.patterns import (
    BurstyPattern,
    DynamicMixPattern,
    HotspotPattern,
    SequentialPattern,
    UniformPattern,
    ZipfianPattern,
)


def draws(pattern, blocks, count, seed=1234):
    sampler = pattern.sampler(blocks, random.Random(seed))
    return [sampler.next() for _ in range(count)]


class TestZipfianShape:
    def test_rank_frequency_slope_matches_alpha(self):
        # Offset == popularity rank, so the log-log regression of
        # frequency against (rank + 1) over well-populated top ranks
        # recovers -alpha.
        alpha = 1.2
        sample = draws(ZipfianPattern(alpha=alpha), 1024, 200_000)
        counts = Counter(sample)
        xs, ys = [], []
        for rank in range(20):
            assert counts[rank] > 100  # top ranks are well-populated
            xs.append(math.log(rank + 1))
            ys.append(math.log(counts[rank]))
        n = len(xs)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        slope = sum(
            (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
        ) / sum((x - mean_x) ** 2 for x in xs)
        assert slope == pytest.approx(-alpha, abs=0.1)

    def test_rank_zero_dominates(self):
        counts = Counter(draws(ZipfianPattern(alpha=1.1), 512, 50_000))
        top = counts.most_common(3)
        assert top[0][0] == 0
        assert counts[0] > counts[10] > counts[100]

    def test_higher_alpha_concentrates_more(self):
        mild = Counter(draws(ZipfianPattern(alpha=0.8), 512, 50_000, seed=7))
        steep = Counter(draws(ZipfianPattern(alpha=1.6), 512, 50_000, seed=7))
        top10 = lambda c: sum(c[r] for r in range(10))  # noqa: E731
        assert top10(steep) > top10(mild)


class TestHotspotShape:
    def test_hot_prefix_absorbs_hot_probability(self):
        pattern = HotspotPattern(hot_fraction=0.1, hot_probability=0.9)
        blocks = 1000
        sample = draws(pattern, blocks, 100_000)
        hot_hits = sum(1 for offset in sample if offset < 100)
        assert hot_hits / len(sample) == pytest.approx(0.9, abs=0.01)

    def test_cold_region_is_uniform_over_cold_blocks(self):
        pattern = HotspotPattern(hot_fraction=0.1, hot_probability=0.5)
        blocks = 200
        sample = [o for o in draws(pattern, blocks, 100_000) if o >= 20]
        counts = Counter(sample)
        assert min(counts) == 20 and max(counts) == blocks - 1
        expected = len(sample) / 180
        assert all(
            count == pytest.approx(expected, rel=0.35)
            for count in counts.values()
        )

    def test_all_hot_pool_stays_in_range(self):
        sample = draws(HotspotPattern(hot_fraction=1.0), 64, 5_000)
        assert max(sample) < 64


class TestSequentialShape:
    @pytest.mark.parametrize("stride", [1, 3])
    def test_stride_monotonic_then_wraps(self, stride):
        blocks = 30
        sample = draws(SequentialPattern(stride=stride), blocks, 100)
        for i, offset in enumerate(sample):
            assert offset == (i * stride) % blocks

    def test_full_coverage_before_repeat(self):
        blocks = 64
        sample = draws(SequentialPattern(), blocks, blocks)
        assert sorted(sample) == list(range(blocks))


class TestBurstyShape:
    @staticmethod
    def run_lengths(sample, blocks):
        """Lengths of maximal consecutive +1 (mod blocks) runs."""
        lengths = []
        current = 1
        for prev, this in zip(sample, sample[1:]):
            if this == (prev + 1) % blocks:
                current += 1
            else:
                lengths.append(current)
                current = 1
        lengths.append(current)
        return lengths

    def test_mean_run_length_tracks_mean_burst(self):
        mean_burst = 16.0
        sample = draws(BurstyPattern(mean_burst=mean_burst), 100_000, 200_000)
        lengths = self.run_lengths(sample, 100_000)
        observed = sum(lengths) / len(lengths)
        # A fraction 1/mean_burst of jumps lands on position+1 by
        # chance in a small pool; with 100k blocks that is negligible.
        assert observed == pytest.approx(mean_burst, rel=0.1)

    def test_run_length_cv_is_geometric(self):
        # Geometric run lengths: CV = sqrt(1 - p) with p = 1/mean.
        mean_burst = 16.0
        sample = draws(BurstyPattern(mean_burst=mean_burst), 100_000, 200_000)
        lengths = self.run_lengths(sample, 100_000)
        mean = sum(lengths) / len(lengths)
        variance = sum((l - mean) ** 2 for l in lengths) / len(lengths)
        cv = math.sqrt(variance) / mean
        assert cv == pytest.approx(math.sqrt(1 - 1 / mean_burst), abs=0.1)

    def test_jumps_are_dispersed(self):
        sample = draws(BurstyPattern(mean_burst=4.0), 10_000, 20_000)
        # Jump targets spread over the pool, not clustered at zero.
        assert len({o for o in sample}) > 2_000


class TestDynamicMixShape:
    def test_phase_boundaries_exact(self):
        # Two sequential children with different strides make every
        # access attributable: the switchover index is exact, not
        # approximate.
        mix = DynamicMixPattern(
            segments=(
                (SequentialPattern(stride=1), 4),
                (SequentialPattern(stride=3), 5),
            )
        )
        sample = draws(mix, 1_000, 18)
        assert sample[0:4] == [0, 1, 2, 3]            # phase A, first visit
        assert sample[4:9] == [0, 3, 6, 9, 12]        # phase B, first visit
        assert sample[9:13] == [4, 5, 6, 7]           # phase A resumes
        assert sample[13:18] == [15, 18, 21, 24, 27]  # phase B resumes

    def test_cycles_indefinitely(self):
        mix = DynamicMixPattern(
            segments=((SequentialPattern(), 3), (SequentialPattern(stride=2), 2))
        )
        sample = draws(mix, 1_000, 25)
        # 5 full cycles of 3+2: phase A emits 0..14 in order overall.
        phase_a = [sample[i] for i in range(25) if i % 5 < 3]
        assert phase_a == list(range(15))

    def test_random_child_respects_boundary(self):
        mix = DynamicMixPattern(
            segments=(
                (SequentialPattern(), 10),
                (UniformPattern(), 10),
            )
        )
        sample = draws(mix, 10_000, 40, seed=3)
        assert sample[0:10] == list(range(10))
        assert sample[20:30] == list(range(10, 20))
        # The uniform phases draw from the whole pool with near
        # certainty of leaving the scan prefix.
        assert any(offset > 100 for offset in sample[10:20])
