"""Unit tests for the access-pattern library: registry, spec grammar,
sampler determinism and snapshot/restore. Statistical *shape* assertions
live in test_pattern_shapes.py; simulator integration in
test_pattern_differential.py."""

import random

import pytest

from repro.workloads.patterns import (
    PATTERNS,
    AccessPattern,
    BurstyPattern,
    DynamicMixPattern,
    HotspotPattern,
    PatternError,
    SequentialPattern,
    UniformPattern,
    ZipfianPattern,
    parse_pattern,
    pattern_names,
)


class TestRegistry:
    def test_registry_names_sorted(self):
        assert pattern_names() == sorted(PATTERNS)
        assert set(pattern_names()) == {
            "bursty", "dynamicmix", "hotspot", "sequential", "uniform", "zipfian",
        }

    def test_every_entry_is_a_pattern_class(self):
        for cls in PATTERNS.values():
            assert issubclass(cls, AccessPattern)
            assert cls.kind in PATTERNS


class TestParsing:
    @pytest.mark.parametrize(
        "name", ["uniform", "zipfian", "hotspot", "sequential", "bursty"]
    )
    def test_bare_name(self, name):
        pattern = parse_pattern(name)
        assert pattern.kind == name

    def test_colon_form(self):
        pattern = parse_pattern("zipfian:alpha=1.4")
        assert isinstance(pattern, ZipfianPattern)
        assert pattern.alpha == 1.4

    def test_paren_form(self):
        pattern = parse_pattern("hotspot(hot_fraction=0.25,hot_probability=0.8)")
        assert isinstance(pattern, HotspotPattern)
        assert pattern.hot_fraction == 0.25
        assert pattern.hot_probability == 0.8

    def test_whitespace_tolerated(self):
        pattern = parse_pattern("  zipfian( alpha = 1.25 )  ")
        assert pattern == ZipfianPattern(alpha=1.25)

    def test_integer_scalar(self):
        pattern = parse_pattern("sequential(stride=3)")
        assert isinstance(pattern, SequentialPattern)
        assert pattern.stride == 3

    def test_dynamicmix(self):
        pattern = parse_pattern(
            "dynamicmix(phases=zipfian(alpha=1.2)@2000+sequential@500)"
        )
        assert isinstance(pattern, DynamicMixPattern)
        assert pattern.segments == (
            (ZipfianPattern(alpha=1.2), 2000),
            (SequentialPattern(), 500),
        )

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "   ",
            "nosuchpattern",
            "zipfian(alpha=1.2",
            "zipfian alpha=1.2)",
            "zipfian(alpha)",
            "zipfian(beta=1.2)",
            "dynamicmix(phases=uniform@notanint)",
            "dynamicmix(phases=uniform)",
            "dynamicmix",
            "dynamicmix(phases=dynamicmix(phases=uniform@5)@5)",
        ],
    )
    def test_bad_specs_raise_pattern_error(self, spec):
        with pytest.raises(PatternError):
            parse_pattern(spec)

    def test_pattern_error_is_value_error(self):
        assert issubclass(PatternError, ValueError)


class TestSpecRoundTrip:
    @pytest.mark.parametrize(
        "pattern",
        [
            UniformPattern(),
            ZipfianPattern(alpha=1.2),
            HotspotPattern(hot_fraction=0.05, hot_probability=0.95),
            SequentialPattern(),
            SequentialPattern(stride=4),
            BurstyPattern(mean_burst=24.0),
            DynamicMixPattern(
                segments=(
                    (ZipfianPattern(alpha=1.1), 2000),
                    (SequentialPattern(stride=2), 1500),
                )
            ),
        ],
        ids=lambda p: p.spec(),
    )
    def test_round_trip(self, pattern):
        spec = pattern.spec()
        assert parse_pattern(spec) == pattern
        assert parse_pattern(spec).spec() == spec

    def test_default_stride_renders_bare(self):
        assert SequentialPattern().spec() == "sequential"

    def test_uniform_renders_bare(self):
        assert UniformPattern().spec() == "uniform"


class TestValidation:
    @pytest.mark.parametrize("alpha", [0.0, -1.0, 9.0])
    def test_zipfian_alpha(self, alpha):
        with pytest.raises(PatternError):
            ZipfianPattern(alpha=alpha)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hot_fraction": 0.0},
            {"hot_fraction": 1.5},
            {"hot_probability": -0.1},
            {"hot_probability": 1.1},
        ],
    )
    def test_hotspot_bounds(self, kwargs):
        with pytest.raises(PatternError):
            HotspotPattern(**kwargs)

    def test_sequential_stride(self):
        with pytest.raises(PatternError):
            SequentialPattern(stride=0)

    def test_bursty_mean(self):
        with pytest.raises(PatternError):
            BurstyPattern(mean_burst=0.5)

    def test_dynamicmix_needs_segments(self):
        with pytest.raises(PatternError):
            DynamicMixPattern(segments=())

    def test_dynamicmix_rejects_zero_count(self):
        with pytest.raises(PatternError):
            DynamicMixPattern(segments=((UniformPattern(), 0),))


ALL_PATTERNS = [
    UniformPattern(),
    ZipfianPattern(alpha=1.2),
    HotspotPattern(),
    SequentialPattern(stride=3),
    BurstyPattern(mean_burst=8.0),
    DynamicMixPattern(
        segments=((ZipfianPattern(alpha=1.1), 40), (SequentialPattern(), 30))
    ),
]
_ids = [p.kind for p in ALL_PATTERNS]


class TestSamplers:
    @pytest.mark.parametrize("pattern", ALL_PATTERNS, ids=_ids)
    def test_same_seed_same_stream(self, pattern):
        a = pattern.sampler(512, random.Random(7))
        b = pattern.sampler(512, random.Random(7))
        assert [a.next() for _ in range(300)] == [b.next() for _ in range(300)]

    @pytest.mark.parametrize("pattern", ALL_PATTERNS, ids=_ids)
    @pytest.mark.parametrize("blocks", [1, 5, 512])
    def test_offsets_in_range(self, pattern, blocks):
        sampler = pattern.sampler(blocks, random.Random(3))
        for _ in range(200):
            assert 0 <= sampler.next() < blocks

    @pytest.mark.parametrize("pattern", ALL_PATTERNS, ids=_ids)
    def test_snapshot_restore_resumes_exactly(self, pattern):
        rng = random.Random(11)
        sampler = pattern.sampler(256, rng)
        for _ in range(97):
            sampler.next()
        rng_state = rng.getstate()
        state = sampler.snapshot_state()
        expected = [sampler.next() for _ in range(80)]

        fresh_rng = random.Random(0)
        fresh = pattern.sampler(256, fresh_rng)
        fresh_rng.setstate(rng_state)
        fresh.restore_state(state)
        assert [fresh.next() for _ in range(80)] == expected

    def test_snapshot_state_is_plain_data(self):
        for pattern in ALL_PATTERNS:
            state = pattern.sampler(64, random.Random(1)).snapshot_state()
            assert isinstance(state, tuple)

    def test_stateless_sampler_rejects_foreign_state(self):
        sampler = UniformPattern().sampler(64, random.Random(1))
        with pytest.raises(ValueError):
            sampler.restore_state((3,))

    def test_zipfian_draws_one_random_per_next(self):
        # The documented draw-order contract: zipfian consumes exactly
        # one rng.random() per next(), so RNG states stay in lockstep.
        rng = random.Random(5)
        sampler = ZipfianPattern(alpha=1.1).sampler(128, rng)
        shadow = random.Random(5)
        for _ in range(50):
            sampler.next()
            shadow.random()
        assert rng.getstate() == shadow.getstate()

    def test_sequential_draws_no_randomness(self):
        rng = random.Random(5)
        before = rng.getstate()
        sampler = SequentialPattern().sampler(128, rng)
        for _ in range(50):
            sampler.next()
        assert rng.getstate() == before
