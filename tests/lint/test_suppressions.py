"""Suppression comments: multi-code lists, mixed tokens, project rules.

``# repro-lint: disable=...`` must accept comma-separated lists mixing
codes and rule names, report unknown tokens (RPL000) without losing the
valid ones, and — for the cross-module passes — anchor at the line the
finding is *reported* on.
"""

import textwrap

from repro.lint import lint_project, lint_source

from tests.lint.test_project import write_package


def codes(source: str):
    return [v.rule.code for v in lint_source(textwrap.dedent(source))]


# ----------------------------------------------------------------------
# Line-local rules.
# ----------------------------------------------------------------------


def test_multi_code_list_suppresses_both_rules_on_one_line():
    source = """
        import random
        import time
        x = random.random() + time.time()  # repro-lint: disable=RPL002,RPL004
    """
    assert codes(source) == []
    # Without the comment both fire (the control for the test above).
    assert codes(source.replace("  # repro-lint: disable=RPL002,RPL004", "")) == [
        "RPL002",
        "RPL004",
    ]


def test_mixed_code_and_name_tokens():
    source = """
        import random
        import time
        x = random.random() + time.time()  # repro-lint: disable=unseeded-random, RPL004
    """
    assert codes(source) == []


def test_partial_list_only_suppresses_listed_codes():
    source = """
        import random
        import time
        x = random.random() + time.time()  # repro-lint: disable=RPL002
    """
    assert codes(source) == ["RPL004"]


def test_unknown_token_reports_rpl000_but_valid_tokens_still_work():
    source = """
        import random
        x = random.random()  # repro-lint: disable=RPL002, RPL999
    """
    assert codes(source) == ["RPL000"]


def test_trailing_reason_after_semicolon_is_allowed():
    source = """
        import time
        t = time.time()  # repro-lint: disable=RPL004; profiling only
    """
    assert codes(source) == []


# ----------------------------------------------------------------------
# Cross-module rules: suppression anchors at the reported line.
# ----------------------------------------------------------------------

_HAZARD = """
    class Filter:
        def __init__(self):
            self._plan_cache = {{}}
            self._plan_epoch = 0

        def plan(self, key):
            return self._plan_cache.get(key){comment}
"""


def _memo_tree(tmp_path, comment: str):
    return write_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/filt.py": _HAZARD.format(comment=comment),
        },
    )


def test_project_rule_suppressed_on_reported_line(tmp_path):
    root = _memo_tree(
        tmp_path, "  # repro-lint: disable=RPL120; cache is rebuilt per call"
    )
    assert lint_project([str(root)]) == []


def test_project_rule_suppression_accepts_rule_name(tmp_path):
    root = _memo_tree(tmp_path, "  # repro-lint: disable=memo-epoch-hazard")
    assert lint_project([str(root)]) == []


def test_project_rule_not_suppressed_by_other_line(tmp_path):
    # A suppression on the method definition line does not cover the
    # read two lines below — anchoring is at the *reported* line.
    root = write_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/filt.py": """
                class Filter:
                    def __init__(self):
                        self._plan_cache = {}
                        self._plan_epoch = 0

                    def plan(self, key):  # repro-lint: disable=RPL120
                        return self._plan_cache.get(key)
            """,
        },
    )
    assert [v.rule.code for v in lint_project([str(root)])] == ["RPL120"]


def test_project_rule_unsuppressed_reports_at_read_line(tmp_path):
    root = _memo_tree(tmp_path, "")
    violations = lint_project([str(root)])
    assert [v.rule.code for v in violations] == ["RPL120"]
    # Line 8 of the dedented fixture is the cache read.
    assert violations[0].line == 8
