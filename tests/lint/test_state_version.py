"""Fingerprint ratchet (RPL110/111): drift detection end to end.

The scenarios mirror the real workflow: generate fingerprints, drift a
watched shape without bumping the version (RPL110), bump the version
without regenerating (RPL111), regenerate (clean again).
"""

from pathlib import Path

from repro.lint import ProjectIndex
from repro.lint.passes import state_version

from tests.lint.test_project import write_package

WATCHLIST = (
    state_version.WatchedEntity(
        key="Cfg",
        kind="dataclass-fields",
        target="pkg.cfg.Cfg",
        exclude="pkg.cfg.INERT",
    ),
    state_version.WatchedEntity(
        key="INERT", kind="string-collection", target="pkg.cfg.INERT"
    ),
    state_version.WatchedEntity(
        key="Sys.snapshot", kind="snapshot-keys", target="pkg.system.Sys.snapshot"
    ),
)
VERSION_SYMBOL = "pkg.cfg.STATE_VERSION"


def build_tree(tmp_path, *, version=1, extra_field="", snapshot_key=""):
    extra = f"    {extra_field}: int = 0\n" if extra_field else ""
    snap = f', "{snapshot_key}": 1' if snapshot_key else ""
    return ProjectIndex.build(
        [
            str(
                write_package(
                    tmp_path,
                    {
                        "pkg/__init__.py": "",
                        "pkg/cfg.py": (
                            "from dataclasses import dataclass\n\n"
                            f"STATE_VERSION = {version}\n"
                            'INERT = frozenset({"trace"})\n\n\n'
                            "@dataclass\n"
                            "class Cfg:\n"
                            "    seed: int = 42\n"
                            "    trace: str = \"\"\n" + extra
                        ),
                        "pkg/system.py": (
                            "class Sys:\n"
                            "    def snapshot(self):\n"
                            '        return {"format": 1, "state": []' + snap + "}\n"
                        ),
                    },
                )
            )
        ]
    )


def run_pass(index, path):
    return state_version.run(
        index,
        fingerprints_path=path,
        watchlist=WATCHLIST,
        version_symbol=VERSION_SYMBOL,
    )


def codes(violations):
    return [v.rule.code for v in violations]


def test_missing_fingerprint_file_is_stale(tmp_path):
    index = build_tree(tmp_path / "tree")
    assert codes(run_pass(index, tmp_path / "fp.json")) == ["RPL111"]


def test_update_then_clean_roundtrip(tmp_path):
    index = build_tree(tmp_path / "tree")
    fp = tmp_path / "fp.json"
    document = state_version.update_fingerprints(
        index, fp, watchlist=WATCHLIST, version_symbol=VERSION_SYMBOL
    )
    # The exclude is applied: trace is inert, seed stays.
    assert document["entities"]["Cfg"] == ["seed"]
    assert document["entities"]["INERT"] == ["trace"]
    assert document["entities"]["Sys.snapshot"] == ["format", "state"]
    assert run_pass(index, fp) == []


def test_field_added_without_bump_fires_rpl110(tmp_path):
    fp = tmp_path / "fp.json"
    state_version.update_fingerprints(
        build_tree(tmp_path / "a"),
        fp,
        watchlist=WATCHLIST,
        version_symbol=VERSION_SYMBOL,
    )
    drifted = build_tree(tmp_path / "b", extra_field="new_knob")
    violations = run_pass(drifted, fp)
    assert codes(violations) == ["RPL110"]
    assert "new_knob" in violations[0].message


def test_snapshot_key_added_without_bump_fires_rpl110(tmp_path):
    fp = tmp_path / "fp.json"
    state_version.update_fingerprints(
        build_tree(tmp_path / "a"),
        fp,
        watchlist=WATCHLIST,
        version_symbol=VERSION_SYMBOL,
    )
    drifted = build_tree(tmp_path / "b", snapshot_key="domains")
    assert codes(run_pass(drifted, fp)) == ["RPL110"]


def test_bump_without_regeneration_fires_rpl111(tmp_path):
    fp = tmp_path / "fp.json"
    state_version.update_fingerprints(
        build_tree(tmp_path / "a"),
        fp,
        watchlist=WATCHLIST,
        version_symbol=VERSION_SYMBOL,
    )
    bumped = build_tree(tmp_path / "b", version=2, extra_field="new_knob")
    assert codes(run_pass(bumped, fp)) == ["RPL111"]
    # Regenerating clears it — the documented workflow.
    state_version.update_fingerprints(
        bumped, fp, watchlist=WATCHLIST, version_symbol=VERSION_SYMBOL
    )
    assert run_pass(bumped, fp) == []


def test_version_symbol_absent_skips_pass(tmp_path):
    index = ProjectIndex.build(
        [
            str(
                write_package(
                    tmp_path,
                    {"pkg/__init__.py": "", "pkg/mod.py": "X = 1\n"},
                )
            )
        ]
    )
    assert run_pass(index, tmp_path / "fp.json") == []


def test_corrupt_fingerprint_file_is_stale(tmp_path):
    index = build_tree(tmp_path / "tree")
    fp = tmp_path / "fp.json"
    fp.write_text("{not json", encoding="utf-8")
    assert codes(run_pass(index, fp)) == ["RPL111"]


def test_fingerprint_output_is_byte_stable(tmp_path):
    fp_a, fp_b = tmp_path / "a.json", tmp_path / "b.json"
    index = build_tree(tmp_path / "tree")
    state_version.update_fingerprints(
        index, fp_a, watchlist=WATCHLIST, version_symbol=VERSION_SYMBOL
    )
    state_version.update_fingerprints(
        index, fp_b, watchlist=WATCHLIST, version_symbol=VERSION_SYMBOL
    )
    assert fp_a.read_bytes() == fp_b.read_bytes()
