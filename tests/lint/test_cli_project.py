"""The repro-lint CLI in project mode: flags, exit codes, ratchet."""

import json
from pathlib import Path

from repro.lint.cli import main

from tests.lint.test_project import write_package

SRC = Path(__file__).resolve().parents[2] / "src"

_HAZARD_TREE = {
    "pkg/__init__.py": "",
    "pkg/filt.py": """
        class Filter:
            def __init__(self):
                self._plan_cache = {}
                self._plan_epoch = 0

            def plan(self, key):
                return self._plan_cache.get(key)
    """,
}


def test_project_mode_on_the_repo_is_clean_and_exits_zero(capsys):
    assert main(["--project", str(SRC)]) == 0


def test_project_mode_reports_hazard_with_exit_one(tmp_path, capsys):
    root = write_package(tmp_path, _HAZARD_TREE)
    assert main(["--project", str(root)]) == 1
    out = capsys.readouterr().out
    assert "RPL120" in out and "filt.py" in out


def test_project_json_report_is_machine_readable(tmp_path, capsys):
    root = write_package(tmp_path, _HAZARD_TREE)
    assert main(["--project", "--json", str(root)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [entry["code"] for entry in payload] == ["RPL120"]
    assert payload[0]["path"].endswith("filt.py")
    assert payload[0]["line"] == 8


def test_baseline_ratchet_accepts_old_findings_and_catches_new(tmp_path, capsys):
    root = write_package(tmp_path, _HAZARD_TREE)
    baseline = tmp_path / "baseline.json"
    # Record the pre-existing finding...
    assert main(["--project", str(root), "--baseline", str(baseline), "--write-baseline"]) == 0
    # ...after which the same tree passes under the ratchet...
    capsys.readouterr()
    assert main(["--project", str(root), "--baseline", str(baseline)]) == 0
    # ...but a finding in a *new* location still fails.
    write_package(
        tmp_path,
        {
            "pkg/other.py": """
                class Cache:
                    def __init__(self):
                        self._row_cache = {}
                        self._row_epoch = 0

                    def row(self, key):
                        return self._row_cache.get(key)
            """,
        },
    )
    assert main(["--project", str(root), "--baseline", str(baseline)]) == 1
    out = capsys.readouterr().out
    assert "other.py" in out and "filt.py" not in out


def test_corrupt_baseline_fails_loudly(tmp_path, capsys):
    root = write_package(tmp_path, _HAZARD_TREE)
    baseline = tmp_path / "baseline.json"
    baseline.write_text("{}", encoding="utf-8")
    assert main(["--project", str(root), "--baseline", str(baseline)]) == 2


def test_update_fingerprints_writes_stable_file(tmp_path, capsys):
    target = tmp_path / "fp.json"
    assert main(["--update-fingerprints", "--fingerprints", str(target), str(SRC)]) == 0
    first = target.read_bytes()
    document = json.loads(first)
    assert document["state_version"] >= 1
    assert "SimConfig" in document["entities"]
    # Regenerating is byte-stable — the CI dirty-tree guard depends on it.
    assert main(["--update-fingerprints", "--fingerprints", str(target), str(SRC)]) == 0
    assert target.read_bytes() == first


def test_update_fingerprints_matches_committed_file(capsys):
    committed = SRC / "repro" / "lint" / "fingerprints.json"
    assert committed.is_file()
    # What --update-fingerprints would write for the current tree is
    # exactly what is committed (same check CI's dirty-tree guard runs).
    from repro.lint.passes.state_version import compute_fingerprints
    from repro.lint import ProjectIndex

    document = compute_fingerprints(ProjectIndex.build([str(SRC)]))
    assert (
        json.dumps(document, indent=2, sort_keys=True) + "\n"
        == committed.read_text(encoding="utf-8")
    )


def test_line_local_mode_unchanged_without_project_flag(tmp_path, capsys):
    root = write_package(tmp_path, _HAZARD_TREE)
    # The memo hazard is a project rule: plain mode stays quiet on it.
    assert main([str(root)]) == 0
