"""The project layer itself: index construction on a synthetic package.

These tests build a real package on disk (so ``module_name_for`` walks
actual ``__init__.py`` files) and check the symbol tables, the import
graph, alias-following resolution and the cross-module constant
resolver the passes depend on.
"""

import textwrap
from pathlib import Path

import pytest

from repro.lint import ProjectIndex
from repro.lint.project import module_name_for


def write_package(root: Path, files: dict) -> Path:
    """Write ``files`` (relative path -> source) under ``root``."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


@pytest.fixture
def synthetic(tmp_path):
    return write_package(
        tmp_path,
        {
            "pkg/__init__.py": """
                from pkg.core import helper
            """,
            "pkg/consts.py": """
                GROUP = frozenset({"alpha", "beta"})
                SHARED = {"k": 1}
                LIMIT = 7
            """,
            "pkg/core.py": """
                from dataclasses import dataclass, field

                from pkg.consts import GROUP
                from pkg import consts


                @dataclass
                class Record:
                    plain: int
                    defaulted: int = 0
                    factory: list = field(default_factory=list)


                def helper(x):
                    return consts.LIMIT + x
            """,
            "pkg/sub/__init__.py": "",
            "pkg/sub/leaf.py": """
                from ..consts import GROUP as RENAMED


                def uses_group():
                    return RENAMED
            """,
        },
    )


def test_module_names_follow_package_structure(synthetic):
    index = ProjectIndex.build([str(synthetic)])
    assert set(index.modules) == {
        "pkg",
        "pkg.consts",
        "pkg.core",
        "pkg.sub",
        "pkg.sub.leaf",
    }
    assert module_name_for(str(synthetic / "pkg/sub/leaf.py")) == "pkg.sub.leaf"


def test_import_graph_edges(synthetic):
    graph = ProjectIndex.build([str(synthetic)]).import_graph()
    assert "pkg.core" in graph["pkg"]  # from pkg.core import helper
    assert "pkg.consts" in graph["pkg.core"]
    # Relative import resolves against the importing package.
    assert "pkg.consts" in graph["pkg.sub.leaf"]
    assert graph["pkg.consts"] == set()


def test_find_class_fields_and_defaults(synthetic):
    index = ProjectIndex.build([str(synthetic)])
    record = index.find_class("pkg.core.Record")
    assert record is not None and record.is_dataclass
    assert sorted(record.fields) == ["defaulted", "factory", "plain"]
    assert not record.fields["plain"].has_default
    assert record.fields["defaulted"].has_default
    assert record.fields["factory"].has_default  # field(default_factory=...)


def test_find_function_follows_reexport(synthetic):
    index = ProjectIndex.build([str(synthetic)])
    direct = index.find_function("pkg.core.helper")
    via_init = index.find_function("pkg.helper")
    assert direct is not None
    assert via_init is not None and via_init.qualname == "pkg.core.helper"


def test_find_constant_and_mutable_globals(synthetic):
    index = ProjectIndex.build([str(synthetic)])
    assert index.find_constant("pkg.consts.LIMIT") is not None
    assert "SHARED" in index.modules["pkg.consts"].mutable_globals
    assert "LIMIT" not in index.modules["pkg.consts"].mutable_globals


def test_resolve_string_collection_across_modules(synthetic):
    index = ProjectIndex.build([str(synthetic)])
    leaf = index.modules["pkg.sub.leaf"]
    func = leaf.functions["uses_group"].node
    returned = func.body[0].value  # the RENAMED name node
    resolved = index.resolve_string_collection(leaf, returned)
    assert sorted(resolved) == ["alpha", "beta"]


def test_syntax_error_raises(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n", encoding="utf-8")
    with pytest.raises(ValueError, match="cannot parse"):
        ProjectIndex.build([str(bad)])
