"""Regression coverage for the findings the project passes surfaced.

Two true positives were surfaced on the real tree and carry justified
suppressions:

* ``RegionScoutFilter.bucket_of`` reads ``_bucket_memo`` without an
  epoch check (RPL120) — justified: the region→bucket mapping is a pure
  function of ``(region, crh_buckets)`` and is never invalidated.
* ``repro.store.get_store`` writes ``_store``/``_store_root`` globals
  (RPL130) — justified: an idempotent per-process memo keyed only by
  the environment each worker inherits.

These tests prove the suppressed findings are real (strip the
suppression comment → the pass fires at that exact location) and that
the committed tree itself lints clean — the failing-then-passing pair,
pinned so neither the justification nor the pass can silently rot.
"""

from pathlib import Path

import pytest

from repro.lint import ProjectIndex, lint_index

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(scope="module")
def index():
    return ProjectIndex.build([str(SRC)])


def strip_suppressions(index, module_name):
    """Remove every suppression comment from one module's source."""
    module = index.modules[module_name]
    module.source = "\n".join(
        line.split("# repro-lint:")[0] for line in module.source.splitlines()
    )


def test_committed_tree_is_clean(index):
    assert lint_index(index) == []


def test_bucket_of_hazard_fires_without_its_suppression(index):
    strip_suppressions(index, "repro.baselines.regionscout")
    try:
        found = [
            v
            for v in lint_index(index)
            if v.rule.code == "RPL120" and v.path.endswith("regionscout.py")
        ]
        assert len(found) == 1
        assert "_bucket_memo" in found[0].message
        assert "bucket_of" in found[0].message
    finally:
        module = index.modules["repro.baselines.regionscout"]
        module.source = Path(module.path).read_text(encoding="utf-8")


def test_get_store_global_write_fires_without_its_suppression(index):
    strip_suppressions(index, "repro.store")
    try:
        found = [
            v
            for v in lint_index(index)
            if v.rule.code == "RPL130" and v.path.endswith("store.py")
        ]
        assert len(found) == 1
        assert "_store" in found[0].message
        assert "run_simulation_task" in found[0].message
    finally:
        module = index.modules["repro.store"]
        module.source = Path(module.path).read_text(encoding="utf-8")


def test_committed_fingerprints_match_the_tree(index):
    """The checked-in fingerprint file is current (the CI dirty-tree
    guard enforces the same property via --update-fingerprints)."""
    from repro.lint.passes import state_version

    violations = state_version.run(index)
    assert violations == []
