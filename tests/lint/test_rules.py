"""Every repro-lint rule must fire on a minimal bad snippet, stay quiet
on the idiomatic fix, and honour a same-line suppression comment."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import RULES, lint_paths, lint_source, resolve_rule

SRC = Path(__file__).resolve().parents[2] / "src"


def codes(source: str):
    return [v.rule.code for v in lint_source(textwrap.dedent(source))]


# ----------------------------------------------------------------------
# Rule firing / clean pairs.
# ----------------------------------------------------------------------


def test_set_iteration_fires():
    assert codes("for x in {1, 2, 3}:\n    print(x)\n") == ["RPL001"]
    assert codes("out = [x for x in set(items)]\n") == ["RPL001"]
    assert codes("out = {x for x in frozenset(items)}\n") == ["RPL001"]


def test_set_iteration_clean_on_sorted():
    assert codes("for x in sorted({1, 2, 3}):\n    print(x)\n") == []
    assert codes("for x in [1, 2, 3]:\n    print(x)\n") == []


def test_unseeded_random_fires():
    assert codes("import random\nrandom.shuffle(xs)\n") == ["RPL002"]
    assert codes("import random as rnd\nrnd.randint(0, 9)\n") == ["RPL002"]
    assert codes("from random import randint\nrandint(0, 9)\n") == ["RPL002"]


def test_unseeded_random_clean_on_instance():
    assert codes("import random\nrng = random.Random(42)\nrng.shuffle(xs)\n") == []
    assert codes("from random import Random\nrng = Random(7)\n") == []


def test_id_keyed_cache_fires():
    assert codes("cache[id(obj)] = 1\n") == ["RPL003"]
    assert codes("d = {id(obj): 1}\n") == ["RPL003"]
    assert codes("cache.get(id(obj))\n") == ["RPL003"]
    assert codes("cache.setdefault(id(obj), [])\n") == ["RPL003"]


def test_id_keyed_cache_clean_on_stable_key():
    assert codes("cache[obj.block] = 1\n") == []
    assert codes("x = id(obj)\n") == []  # bare id() is not a cache key


def test_wall_clock_fires():
    assert codes("import time\nt = time.time()\n") == ["RPL004"]
    assert codes("import time\nt = time.perf_counter()\n") == ["RPL004"]
    assert codes("from time import monotonic\nt = monotonic()\n") == ["RPL004"]
    assert codes(
        "import datetime\nnow = datetime.datetime.now()\n"
    ) == ["RPL004"]


def test_wall_clock_clean_on_simulated_clock():
    assert codes("t = engine.now\n") == []
    assert codes("import time\ntime.sleep(0)\n") == []  # sleeping is not reading


def test_mutable_default_fires():
    assert codes("def f(x=[]):\n    return x\n") == ["RPL005"]
    assert codes("def f(x={}):\n    return x\n") == ["RPL005"]
    assert codes("def f(*, x=set()):\n    return x\n") == ["RPL005"]
    assert codes("def f(x=dict()):\n    return x\n") == ["RPL005"]
    assert codes(
        "from collections import defaultdict\n"
        "def f(x=defaultdict(int)):\n    return x\n"
    ) == ["RPL005"]


def test_mutable_default_clean_on_none():
    assert codes("def f(x=None):\n    return x or []\n") == []
    assert codes("def f(x=()):\n    return x\n") == []  # tuples are immutable
    assert codes("def f(x=frozenset()):\n    return x\n") == []


def test_stats_enum_key_fires():
    bad = """
    def to_dict(self):
        return {k: v for k, v in self.counts.items()}
    """
    assert codes(bad) == ["RPL006"]


def test_stats_enum_key_clean_on_enum_value():
    good = """
    def to_dict(self):
        return {k.value: v for k, v in self.counts.items()}
    """
    assert codes(good) == []
    named = """
    def as_dict(self):
        return {k.name: v for k, v in self.counts.items()}
    """
    assert codes(named) == []


def test_stats_enum_key_only_in_serializers():
    elsewhere = "def helper(d):\n    return {k: v for k, v in d.items()}\n"
    assert codes(elsewhere) == []


# ----------------------------------------------------------------------
# Suppressions.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("token", ["RPL005", "mutable-default"])
def test_suppression_by_code_and_name(token):
    source = f"def f(x=[]):  # repro-lint: disable={token}\n    return x\n"
    assert codes(source) == []


def test_suppression_only_covers_its_line():
    source = (
        "def f(x=[]):  # repro-lint: disable=RPL005\n"
        "    return x\n"
        "def g(y=[]):\n"
        "    return y\n"
    )
    assert codes(source) == ["RPL005"]


def test_suppression_with_multiple_codes():
    source = (
        "import random\n"
        "def f(x=[]):  # repro-lint: disable=RPL005, RPL002\n"
        "    return random.random()\n"
    )
    # The RPL002 call is on the *next* line, so only RPL005 is silenced.
    assert codes(source) == ["RPL002"]


def test_unknown_suppression_token_is_reported():
    source = "x = 1  # repro-lint: disable=RPL999\n"
    assert codes(source) == ["RPL000"]


def test_mentioning_syntax_in_string_is_not_a_suppression():
    source = (
        "def f(x=[]):\n"
        "    return 'silence with # repro-lint: disable=RPL005'\n"
    )
    assert codes(source) == ["RPL005"]


# ----------------------------------------------------------------------
# Catalogue and whole-tree contract.
# ----------------------------------------------------------------------


def test_rule_catalogue_resolves_by_code_and_name():
    for rule in RULES:
        assert resolve_rule(rule.code) is rule
        assert resolve_rule(rule.name) is rule
    with pytest.raises(KeyError):
        resolve_rule("RPL999")


def test_src_tree_is_lint_clean():
    violations = lint_paths([str(SRC)])
    assert violations == [], "\n".join(v.format() for v in violations)


def test_cli_json_mode(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x=[]):\n    return x\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint.cli", str(bad), "--json"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert [v["code"] for v in payload] == ["RPL005"]
    assert payload[0]["line"] == 1


def test_cli_exit_zero_on_clean(tmp_path):
    good = tmp_path / "good.py"
    good.write_text("def f(x=None):\n    return x\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint.cli", str(good)],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0
    assert proc.stdout.strip() == ""
