"""Drifted-fixture coverage for the cross-module passes.

Each fixture is a tiny on-disk package with one deliberate contract
violation; the matching pass must fire with the right code, and the
repaired twin must stay quiet.
"""

import textwrap
from pathlib import Path

from repro.lint import lint_project

from tests.lint.test_project import write_package


def project_codes(root: Path):
    return [(v.rule.code, Path(v.path).name, v.line) for v in lint_project([str(root)])]


def only_codes(root: Path):
    return [code for code, _name, _line in project_codes(root)]


# ----------------------------------------------------------------------
# Serialization contract (RPL100/101/102).
# ----------------------------------------------------------------------


def test_serialization_clean_literal_style(tmp_path):
    write_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/model.py": """
                from dataclasses import dataclass


                @dataclass
                class Point:
                    x: int
                    y: int

                    def to_dict(self):
                        return {"x": self.x, "y": self.y}

                    @classmethod
                    def from_dict(cls, data):
                        return cls(**data)
            """,
        },
    )
    assert only_codes(tmp_path) == []


def test_serialization_missing_field_fires(tmp_path):
    write_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/model.py": """
                from dataclasses import dataclass


                @dataclass
                class Point:
                    x: int
                    y: int

                    def to_dict(self):
                        return {"x": self.x}

                    @classmethod
                    def from_dict(cls, data):
                        return cls(**data)
            """,
        },
    )
    findings = project_codes(tmp_path)
    assert ("RPL100", "model.py", 8) in findings  # the y field's line


def test_serialization_asymmetric_key_fires_both_ways(tmp_path):
    write_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/model.py": """
                from dataclasses import dataclass


                @dataclass
                class Point:
                    x: int

                    def to_dict(self):
                        return {"x": self.x, "legacy": 0}

                    @classmethod
                    def from_dict(cls, data):
                        return cls(**data)
            """,
        },
    )
    # "legacy" is emitted but cls(**data) only accepts dataclass fields.
    assert "RPL101" in only_codes(tmp_path)


def test_serialization_reconstructed_but_never_emitted(tmp_path):
    write_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/model.py": """
                from dataclasses import dataclass


                @dataclass
                class Point:
                    x: int

                    def to_dict(self):
                        return {"x": self.x}

                    @classmethod
                    def from_dict(cls, data):
                        return cls(x=data["x"] + data["ghost"])
            """,
        },
    )
    assert "RPL101" in only_codes(tmp_path)


def test_serialization_omit_when_empty_violation(tmp_path):
    write_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/model.py": """
                from dataclasses import dataclass


                @dataclass
                class Stats:
                    count: int
                    extras: dict

                    def to_dict(self):
                        out = {"count": self.count}
                        if self.extras:
                            out["extras"] = self.extras
                        return out

                    @classmethod
                    def from_dict(cls, data):
                        return cls(**data)
            """,
        },
    )
    # extras is emitted only when truthy but has no default: the omitted
    # case cannot reconstruct.
    assert "RPL102" in only_codes(tmp_path)


def test_serialization_omit_when_empty_with_default_is_clean(tmp_path):
    write_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/model.py": """
                from dataclasses import dataclass, field


                @dataclass
                class Stats:
                    count: int
                    extras: dict = field(default_factory=dict)

                    def to_dict(self):
                        out = {"count": self.count}
                        if self.extras:
                            out["extras"] = self.extras
                        return out

                    @classmethod
                    def from_dict(cls, data):
                        return cls(**data)
            """,
        },
    )
    assert only_codes(tmp_path) == []


def test_serialization_fields_loop_with_cross_module_dispatch(tmp_path):
    """The SimStats idiom: fields(self) loop, constant-collection branch."""
    write_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/keys.py": """
                SPECIAL = frozenset({"tagged"})
            """,
            "pkg/model.py": """
                from dataclasses import dataclass, fields

                from pkg.keys import SPECIAL


                @dataclass
                class Stats:
                    plain: int
                    tagged: dict

                    def to_dict(self):
                        out = {}
                        for f in fields(self):
                            value = getattr(self, f.name)
                            if f.name in SPECIAL:
                                out[f.name] = dict(value)
                            else:
                                out[f.name] = value
                        return out

                    @classmethod
                    def from_dict(cls, data):
                        kwargs = dict(data)
                        if "tagged" in kwargs:
                            kwargs["tagged"] = dict(kwargs["tagged"])
                        return cls(**kwargs)
            """,
        },
    )
    assert only_codes(tmp_path) == []


# ----------------------------------------------------------------------
# Memo-epoch hazard (RPL120).
# ----------------------------------------------------------------------

_MEMO_TEMPLATE = """
    class Filter:
        def __init__(self):
            self._plan_cache = {{}}
            self._plan_epoch = 0

        def invalidate(self):
            self._plan_epoch += 1
            self._plan_cache.clear()

        def plan(self, key):
{body}
"""


def _memo_package(tmp_path, body: str) -> Path:
    return write_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/filt.py": _MEMO_TEMPLATE.format(body=textwrap.indent(body, " " * 12)),
        },
    )


def test_memo_epoch_hazard_fires(tmp_path):
    _memo_package(tmp_path, "return self._plan_cache.get(key)\n")
    findings = project_codes(tmp_path)
    assert [code for code, *_ in findings] == ["RPL120"]


def test_memo_epoch_consulting_method_is_clean(tmp_path):
    _memo_package(
        tmp_path,
        "entry = self._plan_cache.get(key)\n"
        "if entry is not None and entry[0] == self._plan_epoch:\n"
        "    return entry[1]\n"
        "return None\n",
    )
    assert only_codes(tmp_path) == []


def test_memo_epoch_class_without_epoch_is_out_of_scope(tmp_path):
    write_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/filt.py": """
                class PureMemo:
                    def __init__(self):
                        self._hash_memo = {}

                    def get(self, key):
                        return self._hash_memo.get(key)
            """,
        },
    )
    assert only_codes(tmp_path) == []


# ----------------------------------------------------------------------
# Parallel-task purity (RPL130/131).
# ----------------------------------------------------------------------


def test_parallel_global_write_fires_through_call_chain(tmp_path):
    write_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/tasks.py": """
                from pkg.state import bump


                def parallel_map(fn, items):
                    return [fn(item) for item in items]


                def run_cell(item):
                    return bump(item)


                def main(items):
                    return parallel_map(run_cell, items)
            """,
            "pkg/state.py": """
                _counter = 0


                def bump(item):
                    global _counter
                    _counter += 1
                    return (_counter, item)
            """,
        },
    )
    findings = project_codes(tmp_path)
    assert [(code, name) for code, name, _line in findings] == [
        ("RPL130", "state.py")
    ]


def test_parallel_mutable_capture_fires(tmp_path):
    write_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/tasks.py": """
                RESULTS = {}


                def parallel_map(fn, items):
                    return [fn(item) for item in items]


                def run_cell(item):
                    RESULTS[item] = item * 2
                    return item


                def main(items):
                    return parallel_map(run_cell, items)
            """,
        },
    )
    assert "RPL131" in only_codes(tmp_path)


def test_parallel_pure_task_and_readonly_global_are_clean(tmp_path):
    write_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/tasks.py": """
                PROFILES = {"fft": 3}


                def parallel_map(fn, items):
                    return [fn(item) for item in items]


                def run_cell(item):
                    local = {}
                    local[item] = PROFILES["fft"]
                    return local


                def main(items):
                    return parallel_map(run_cell, items)
            """,
        },
    )
    assert only_codes(tmp_path) == []


def test_task_fn_keyword_is_a_submission_site(tmp_path):
    write_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/tasks.py": """
                LOG = []


                def run_matrix(tasks, task_fn=None):
                    return [task_fn(t) for t in tasks]


                def worker(task):
                    LOG.append(task)
                    return task


                def main(tasks):
                    return run_matrix(tasks, task_fn=worker)
            """,
        },
    )
    assert "RPL131" in only_codes(tmp_path)
