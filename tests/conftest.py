"""Suite-wide pytest hooks.

``--update-golden`` rewrites the golden-run corpus under
``tests/golden/data/`` from the current simulator output instead of
comparing against it. Use it after an *intentional* behaviour change,
eyeball the diff of the regenerated JSON, and commit the data files with
the code change that caused them (see CHANGES.md conventions).
"""

import os
import tempfile

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_store():
    """Point REPRO_STORE at a per-session temp dir for the whole suite.

    The store defaults to ``~/.cache/repro``; tests must neither read a
    developer's real store (stale entries would mask regressions the
    suite exists to catch) nor pollute it with the suite's toy cells.
    Individual tests still repoint or disable it via monkeypatch.
    """
    previous = os.environ.get("REPRO_STORE")
    with tempfile.TemporaryDirectory(prefix="repro-store-") as tmp:
        os.environ["REPRO_STORE"] = tmp
        try:
            yield
        finally:
            if previous is None:
                os.environ.pop("REPRO_STORE", None)
            else:
                os.environ["REPRO_STORE"] = previous


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate tests/golden/data/*.json instead of asserting",
    )
