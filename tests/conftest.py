"""Suite-wide pytest hooks.

``--update-golden`` rewrites the golden-run corpus under
``tests/golden/data/`` from the current simulator output instead of
comparing against it. Use it after an *intentional* behaviour change,
eyeball the diff of the regenerated JSON, and commit the data files with
the code change that caused them (see CHANGES.md conventions).
"""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate tests/golden/data/*.json instead of asserting",
    )
